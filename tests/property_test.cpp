/// \file property_test.cpp
/// Cross-module property tests on randomly generated designs: invariants
/// that must hold for any input, checked over parameterized seed sweeps.
#include <gtest/gtest.h>

#include <set>

#include "core/conflict.h"
#include "core/exact_solver.h"
#include "core/interval_gen.h"
#include "core/lr_solver.h"
#include "db/panel.h"
#include "gen/generator.h"
#include "route/engine.h"

namespace cpr {
namespace {

db::Design randomDesign(std::uint64_t seed, geom::Coord width = 80,
                        geom::Coord rows = 2) {
  gen::GenOptions o;
  o.seed = seed;
  o.width = width;
  o.numRows = rows;
  o.pinDensity = 0.22;
  o.minPinTracks = 2;
  o.maxPinTracks = 4;
  o.maxNetSpan = 30;
  o.blockagesPerRow = 2;
  return gen::generate(o);
}

class DesignProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesignProperty, IntervalGenerationInvariants) {
  const db::Design d = randomDesign(GetParam());
  for (const db::Panel& panel : db::extractPanels(d)) {
    const core::Problem p = core::buildProblem(d, panel);
    for (std::size_t j = 0; j < p.pins.size(); ++j) {
      const db::Pin& pin = d.pin(p.pins[j].designPin);
      for (core::Index i : p.pins[j].intervals) {
        const core::AccessInterval& iv =
            p.intervals[static_cast<std::size_t>(i)];
        // Candidate covers the pin on one of the pin's tracks, on free space.
        EXPECT_TRUE(iv.span.contains(pin.shape.x));
        EXPECT_TRUE(pin.shape.y.contains(iv.track));
        EXPECT_TRUE(panel.freeOn(iv.track).containsAll(iv.span));
        // The conflict span is the inflated real span.
        EXPECT_TRUE(iv.conflictSpan.contains(iv.span));
        // Interval association is exactly the covered same-net pins.
        for (core::Index q : iv.pins) {
          const db::Pin& qp = d.pin(p.pins[static_cast<std::size_t>(q)].designPin);
          EXPECT_EQ(qp.net, iv.net);
          EXPECT_TRUE(iv.span.contains(qp.shape.x));
          EXPECT_TRUE(qp.shape.y.contains(iv.track));
        }
      }
      // Every pin has its guaranteed minimum interval (Theorem 1).
      ASSERT_NE(p.pins[j].minimalInterval, geom::kInvalidIndex);
    }
  }
}

TEST_P(DesignProperty, SolversProduceLegalComparableSolutions) {
  const db::Design d = randomDesign(GetParam(), 64, 1);
  core::Problem p = core::buildProblem(d, db::extractPanel(d, 0));
  core::detectConflicts(p);

  const core::Assignment lr = core::solveLr(p);
  core::ExactOptions eo;
  eo.deadline = support::Deadline::after(5.0);
  const core::Assignment exact = core::solveExact(p, eo);

  for (const core::Assignment* a : {&lr, &exact}) {
    EXPECT_EQ(a->violations, 0);
    const core::AssignmentAudit audit_ = core::audit(p, *a);
    EXPECT_EQ(audit_.overlapsBetweenNets, 0);
    EXPECT_EQ(audit_.unassignedPins, 0);
    EXPECT_TRUE(audit_.eachPinCovered);
  }
  // Exact is seeded with LR, so it never loses to it; LR stays within a
  // reasonable factor (the paper's "pretty close", Fig. 6(b)).
  EXPECT_GE(exact.objective, lr.objective - 1e-9);
  EXPECT_GE(lr.objective, 0.85 * exact.objective);
}

TEST_P(DesignProperty, RoutedNetsTouchAllTheirPins) {
  const db::Design d = randomDesign(GetParam());
  route::RouteEngine engine(d, nullptr, 12);
  const route::RoutingGrid& g = engine.grid();
  for (db::Index n = 0; n < static_cast<db::Index>(d.nets().size()); ++n) {
    if (!engine.routeNet(n, {})) continue;
    const auto& st = engine.state(n);
    std::set<int> nodes(st.nodes.begin(), st.nodes.end());
    // Every pin of the net must have a V1 via over its shape, and that via
    // site must carry committed metal.
    std::size_t v1 = 0;
    for (const route::ViaSite& v : st.vias) {
      if (v.level != 1) continue;
      ++v1;
      EXPECT_TRUE(nodes.count(g.id(route::Node{route::RLayer::M2, v.x, v.y})))
          << "V1 at " << v.x << "," << v.y << " has no metal";
    }
    EXPECT_GE(v1, d.net(n).pins.size());
  }
}

TEST_P(DesignProperty, ConflictSetsCoverAllPairwiseOverlaps) {
  const db::Design d = randomDesign(GetParam(), 48, 1);
  core::Problem p = core::buildProblem(d, db::extractPanel(d, 0));
  core::detectConflicts(p);
  // Any two intervals whose conflict spans overlap on one track must appear
  // together in at least one conflict set.
  std::set<std::pair<core::Index, core::Index>> covered;
  for (const core::ConflictSet& cs : p.conflicts) {
    for (std::size_t a = 0; a < cs.intervals.size(); ++a) {
      for (std::size_t b = a + 1; b < cs.intervals.size(); ++b) {
        covered.insert({std::min(cs.intervals[a], cs.intervals[b]),
                        std::max(cs.intervals[a], cs.intervals[b])});
      }
    }
  }
  for (std::size_t a = 0; a < p.intervals.size(); ++a) {
    for (std::size_t b = a + 1; b < p.intervals.size(); ++b) {
      if (p.intervals[a].track != p.intervals[b].track) continue;
      if (!p.intervals[a].conflictSpan.overlaps(p.intervals[b].conflictSpan))
        continue;
      EXPECT_TRUE(covered.count({static_cast<core::Index>(a),
                                 static_cast<core::Index>(b)}))
          << "overlap of I" << a << " and I" << b << " uncovered";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesignProperty,
                         ::testing::Range<std::uint64_t>(200, 212));

}  // namespace
}  // namespace cpr
