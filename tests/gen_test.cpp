#include <gtest/gtest.h>

#include "core/interval_gen.h"
#include "db/panel.h"
#include "gen/generator.h"

namespace cpr::gen {
namespace {

TEST(Generator, ProducesValidDesign) {
  GenOptions o;
  o.seed = 42;
  o.width = 100;
  o.numRows = 5;
  const db::Design d = generate(o);
  EXPECT_EQ(d.validate(), "");
  EXPECT_GT(d.nets().size(), 0u);
  EXPECT_GT(d.pins().size(), 0u);
}

TEST(Generator, IsDeterministic) {
  GenOptions o;
  o.seed = 7;
  o.width = 80;
  o.numRows = 4;
  const db::Design a = generate(o);
  const db::Design b = generate(o);
  ASSERT_EQ(a.pins().size(), b.pins().size());
  ASSERT_EQ(a.nets().size(), b.nets().size());
  for (std::size_t i = 0; i < a.pins().size(); ++i) {
    EXPECT_EQ(a.pins()[i].shape, b.pins()[i].shape);
    EXPECT_EQ(a.pins()[i].net, b.pins()[i].net);
  }
  ASSERT_EQ(a.blockages().size(), b.blockages().size());
}

TEST(Generator, SeedsProduceDifferentDesigns) {
  GenOptions o;
  o.width = 80;
  o.numRows = 4;
  o.seed = 1;
  const db::Design a = generate(o);
  o.seed = 2;
  const db::Design b = generate(o);
  bool differs = a.pins().size() != b.pins().size();
  for (std::size_t i = 0; !differs && i < a.pins().size(); ++i)
    differs = a.pins()[i].shape != b.pins()[i].shape;
  EXPECT_TRUE(differs);
}

TEST(Generator, EveryNetHasAtLeastTwoPins) {
  GenOptions o;
  o.seed = 5;
  o.width = 120;
  o.numRows = 6;
  const db::Design d = generate(o);
  for (const db::Net& n : d.nets()) EXPECT_GE(n.pins.size(), 2u);
}

TEST(Generator, PinsAreDisjoint) {
  GenOptions o;
  o.seed = 9;
  o.width = 60;
  o.numRows = 3;
  o.pinDensity = 0.5;
  const db::Design d = generate(o);
  for (std::size_t a = 0; a < d.pins().size(); ++a) {
    for (std::size_t b = a + 1; b < d.pins().size(); ++b) {
      EXPECT_FALSE(d.pins()[a].shape.overlaps(d.pins()[b].shape))
          << d.pins()[a].name << " vs " << d.pins()[b].name;
    }
  }
}

TEST(Generator, NetsRespectLocality) {
  GenOptions o;
  o.seed = 13;
  o.width = 200;
  o.numRows = 8;
  o.maxNetSpan = 20;
  o.maxNetRowSpread = 1;
  const db::Design d = generate(o);
  for (std::size_t n = 0; n < d.nets().size(); ++n) {
    const geom::Rect box = d.netBox(static_cast<db::Index>(n));
    EXPECT_LE(box.x.length(), 2 * o.maxNetSpan);
    // Row spread: tracks across at most (2*spread+1) rows.
    EXPECT_LE(box.y.length(),
              (2 * o.maxNetRowSpread + 1) * o.tracksPerRow - 1);
  }
}

TEST(Generator, EveryPinKeepsAFreeTrack) {
  GenOptions o;
  o.seed = 17;
  o.width = 100;
  o.numRows = 5;
  o.blockagesPerRow = 3.0;
  const db::Design d = generate(o);
  const core::Problem p =
      core::buildProblem(d, db::extractPanels(d));
  for (const core::ProblemPin& pin : p.pins) {
    EXPECT_NE(pin.minimalInterval, geom::kInvalidIndex)
        << "pin " << d.pin(pin.designPin).name << " lost all access";
  }
}

TEST(PaperSuite, SpecsMatchTable2) {
  const auto& suite = paperSuite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suiteSpec("ecc").nets, 1671);
  EXPECT_EQ(suiteSpec("efc").nets, 2219);
  EXPECT_EQ(suiteSpec("ctl").nets, 2706);
  EXPECT_EQ(suiteSpec("alu").nets, 3108);
  EXPECT_EQ(suiteSpec("div").nets, 5813);
  EXPECT_EQ(suiteSpec("top").nets, 22201);
  EXPECT_THROW((void)suiteSpec("nope"), std::invalid_argument);
}

TEST(PaperSuite, SmallestDesignBuildsWithExactNetCount) {
  const db::Design d = makeSuiteDesign(suiteSpec("ecc"));
  EXPECT_EQ(d.nets().size(), 1671u);
  EXPECT_EQ(d.validate(), "");
  EXPECT_EQ(d.tracksPerRow(), 10);  // the paper's 10-track panel
  // 21 um at 40 nm pitch, utilization-rescaled (DESIGN.md §4): the die keeps
  // the published square aspect ratio.
  EXPECT_NEAR(static_cast<double>(d.width()) / (10.0 * d.numRows()), 1.0, 0.06);
  EXPECT_GT(d.width(), 300);
}

}  // namespace
}  // namespace cpr::gen
