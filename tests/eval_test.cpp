#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace cpr::eval {
namespace {

db::Design twoNetDesign() {
  db::Design d("m", 30, 1, 10);
  const db::Index a = d.addNet("A");
  const db::Index b = d.addNet("B");
  d.addPin("a1", a, {geom::Interval::point(2), geom::Interval{2, 4}});
  d.addPin("a2", a, {geom::Interval::point(12), geom::Interval{2, 4}});
  d.addPin("b1", b, {geom::Interval::point(5), geom::Interval{6, 8}});
  d.addPin("b2", b, {geom::Interval::point(25), geom::Interval{6, 8}});
  return d;
}

TEST(Metrics, AllCleanSumsRoutedQuantities) {
  const db::Design d = twoNetDesign();
  route::RoutingResult r;
  r.nets = {route::NetResult{true, true, 11, 3},
            route::NetResult{true, true, 21, 4}};
  r.seconds = 1.5;
  const Metrics m = summarize(d, r, 0.5);
  EXPECT_EQ(m.totalNets, 2);
  EXPECT_EQ(m.routedClean, 2);
  EXPECT_DOUBLE_EQ(m.routability, 100.0);
  EXPECT_EQ(m.vias, 7);
  EXPECT_EQ(m.wirelength, 32);
  EXPECT_DOUBLE_EQ(m.seconds, 2.0);  // routing + extra (pin access) time
}

TEST(Metrics, DirtyNetCountsAsUnroutedWithHpwl) {
  const db::Design d = twoNetDesign();
  route::RoutingResult r;
  // Net A routed+clean; net B routed but dirty.
  r.nets = {route::NetResult{true, true, 11, 3},
            route::NetResult{true, false, 21, 4}};
  const Metrics m = summarize(d, r);
  EXPECT_EQ(m.routedClean, 1);
  EXPECT_DOUBLE_EQ(m.routability, 50.0);
  EXPECT_EQ(m.vias, 3);  // only the clean net's vias count
  // WL = 11 (clean grid WL) + HPWL of net B (|25-5| + |8-6| = 22).
  EXPECT_EQ(m.wirelength, 11 + 22);
}

TEST(Metrics, UnroutedNetUsesHpwl) {
  const db::Design d = twoNetDesign();
  route::RoutingResult r;
  r.nets = {route::NetResult{false, false, 0, 0},
            route::NetResult{true, true, 21, 4}};
  const Metrics m = summarize(d, r);
  // Net A HPWL = |12-2| + |4-2| = 12.
  EXPECT_EQ(m.wirelength, 21 + 12);
  EXPECT_EQ(m.routedClean, 1);
}

TEST(Metrics, EmptyDesignIsZero) {
  const db::Design d("empty", 10, 1, 10);
  route::RoutingResult r;
  const Metrics m = summarize(d, r);
  EXPECT_EQ(m.totalNets, 0);
  EXPECT_DOUBLE_EQ(m.routability, 0.0);
}

TEST(Metrics, TableRowFormatsAllColumns) {
  Metrics m;
  m.routability = 97.25;
  m.vias = 4907;
  m.wirelength = 40465;
  m.seconds = 2.01;
  const std::string row = tableRow("ecc", m);
  EXPECT_NE(row.find("ecc"), std::string::npos);
  EXPECT_NE(row.find("97.25"), std::string::npos);
  EXPECT_NE(row.find("4907"), std::string::npos);
  EXPECT_NE(row.find("40465"), std::string::npos);
  EXPECT_NE(row.find("2.01"), std::string::npos);
}

}  // namespace
}  // namespace cpr::eval
