#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/interval_gen.h"
#include "db/panel.h"

namespace cpr::core {
namespace {

using db::Design;
using db::Layer;
using geom::Interval;
using geom::Rect;

/// Fig. 3-style single-row scenario: net A = {a2(col2), a1(col10), a3(col30)},
/// diff-net pins b1(col15) and d1(col22) inside A's bounding box.
Design fig3Design() {
  Design d("fig3", /*width=*/40, /*numRows=*/1, /*tracksPerRow=*/10);
  const db::Index nA = d.addNet("A");
  const db::Index nB = d.addNet("B");
  const db::Index nD = d.addNet("D");
  d.addPin("a1", nA, Rect{Interval::point(10), Interval{2, 4}});
  d.addPin("a2", nA, Rect{Interval::point(2), Interval{1, 3}});
  d.addPin("a3", nA, Rect{Interval::point(30), Interval{1, 3}});
  d.addPin("b1", nB, Rect{Interval::point(15), Interval{3, 5}});
  d.addPin("d1", nD, Rect{Interval::point(22), Interval{3, 5}});
  return d;
}

Index localPin(const Problem& p, const Design& d, const std::string& name) {
  for (std::size_t j = 0; j < p.pins.size(); ++j) {
    if (d.pin(p.pins[j].designPin).name == name) return static_cast<Index>(j);
  }
  return geom::kInvalidIndex;
}

TEST(IntervalGen, EveryPinGetsAMinimalInterval) {
  const Design d = fig3Design();
  const Problem p = buildProblem(d, db::extractPanel(d, 0));
  ASSERT_EQ(p.pins.size(), 5u);
  for (const ProblemPin& pin : p.pins) {
    ASSERT_NE(pin.minimalInterval, geom::kInvalidIndex);
    const AccessInterval& mi =
        p.intervals[static_cast<std::size_t>(pin.minimalInterval)];
    EXPECT_TRUE(mi.minimal);
    EXPECT_EQ(mi.span, d.pin(pin.designPin).shape.x);
    ASSERT_EQ(mi.pins.size(), 1u);  // minimum interval covers only its pin
  }
}

TEST(IntervalGen, CandidatesCoverTheirPinAndStayInBox) {
  const Design d = fig3Design();
  const Problem p = buildProblem(d, db::extractPanel(d, 0));
  for (std::size_t j = 0; j < p.pins.size(); ++j) {
    const db::Pin& pin = d.pin(p.pins[j].designPin);
    const Interval box = d.netBox(pin.net).x;
    for (Index i : p.pins[j].intervals) {
      const AccessInterval& iv = p.intervals[static_cast<std::size_t>(i)];
      EXPECT_TRUE(iv.span.contains(pin.shape.x))
          << "interval " << iv.span << " misses pin " << pin.name;
      EXPECT_TRUE(box.contains(iv.span))
          << "interval " << iv.span << " outside box " << box;
      EXPECT_TRUE(pin.shape.y.contains(iv.track));
      EXPECT_EQ(iv.net, pin.net);
    }
  }
}

TEST(IntervalGen, DiffNetCutLinesAreEnumerated) {
  const Design d = fig3Design();
  const Problem p = buildProblem(d, db::extractPanel(d, 0));
  const Index a1 = localPin(p, d, "a1");
  // On track 3, b1(15) and d1(22) sit right of a1(10) inside box [2,30]:
  // right edges {14, 21, 30}, left edge {2}; plus minimum [10,10].
  std::set<std::pair<geom::Coord, geom::Coord>> spans;
  for (Index i : p.pins[static_cast<std::size_t>(a1)].intervals) {
    const AccessInterval& iv = p.intervals[static_cast<std::size_t>(i)];
    if (iv.track == 3) spans.insert({iv.span.lo, iv.span.hi});
  }
  EXPECT_TRUE(spans.count({2, 14}));   // stop before b1 (paper's I^a1_1)
  EXPECT_TRUE(spans.count({2, 21}));   // stop before d1 (paper's I^a1_2)
  EXPECT_TRUE(spans.count({2, 30}));   // maximum interval
  EXPECT_TRUE(spans.count({10, 10}));  // minimum interval
  EXPECT_EQ(spans.size(), 4u);
}

TEST(IntervalGen, TracksWithoutDiffNetPinsGetMaximumInterval) {
  const Design d = fig3Design();
  const Problem p = buildProblem(d, db::extractPanel(d, 0));
  const Index a1 = localPin(p, d, "a1");
  // Track 2: no diff-net pins (b1/d1 start at track 3) → only the maximum
  // [2,30] and minimum [10,10].
  std::set<std::pair<geom::Coord, geom::Coord>> spans;
  for (Index i : p.pins[static_cast<std::size_t>(a1)].intervals) {
    const AccessInterval& iv = p.intervals[static_cast<std::size_t>(i)];
    if (iv.track == 2) spans.insert({iv.span.lo, iv.span.hi});
  }
  EXPECT_TRUE(spans.count({2, 30}));
  EXPECT_TRUE(spans.count({10, 10}));
  EXPECT_EQ(spans.size(), 2u);
}

TEST(IntervalGen, SharedIntervalCoversMultipleSameNetPins) {
  const Design d = fig3Design();
  const Problem p = buildProblem(d, db::extractPanel(d, 0));
  // The maximum interval [2,30] on track 2 covers a2(2), a1(10) and a3(30):
  // one candidate shared by three pins (an intra-panel connection).
  bool found = false;
  for (const AccessInterval& iv : p.intervals) {
    if (iv.track == 2 && iv.span == Interval(2, 30)) {
      EXPECT_EQ(iv.pins.size(), 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(IntervalGen, BlockageClipsAvailableRange) {
  Design d = fig3Design();
  d.addBlockage(Layer::M2, Rect{Interval{18, 25}, Interval{2, 2}});
  const Problem p = buildProblem(d, db::extractPanel(d, 0));
  const Index a1 = localPin(p, d, "a1");
  for (Index i : p.pins[static_cast<std::size_t>(a1)].intervals) {
    const AccessInterval& iv = p.intervals[static_cast<std::size_t>(i)];
    if (iv.track == 2) {
      EXPECT_LE(iv.span.hi, 17);
    }
  }
}

TEST(IntervalGen, FullyBlockedTrackSkipped) {
  Design d = fig3Design();
  // Block a1's column on tracks 2 and 3; only track 4 stays accessible.
  d.addBlockage(Layer::M2, Rect{Interval{9, 11}, Interval{2, 3}});
  const Problem p = buildProblem(d, db::extractPanel(d, 0));
  const Index a1 = localPin(p, d, "a1");
  ASSERT_NE(a1, geom::kInvalidIndex);
  EXPECT_FALSE(p.pins[static_cast<std::size_t>(a1)].intervals.empty());
  for (Index i : p.pins[static_cast<std::size_t>(a1)].intervals) {
    EXPECT_EQ(p.intervals[static_cast<std::size_t>(i)].track, 4);
  }
}

TEST(IntervalGen, InaccessiblePinReported) {
  Design d("t", 20, 1, 10);
  const db::Index n = d.addNet("A");
  d.addPin("p", n, Rect{Interval::point(5), Interval{2, 3}});
  d.addPin("q", n, Rect{Interval::point(12), Interval{2, 3}});
  d.addBlockage(Layer::M2, Rect{Interval{4, 6}, Interval{2, 3}});  // buries p
  const Problem p = buildProblem(d, db::extractPanel(d, 0));
  const Index lp = localPin(p, d, "p");
  EXPECT_TRUE(p.pins[static_cast<std::size_t>(lp)].intervals.empty());
  EXPECT_EQ(p.pins[static_cast<std::size_t>(lp)].minimalInterval,
            geom::kInvalidIndex);
}

TEST(IntervalGen, MaxExtentCapsLongNets) {
  const Design d = fig3Design();
  GenOptions opts;
  opts.maxExtent = 3;  // paper footnote 1: estimated M2 routing box
  const Problem p = buildProblem(d, db::extractPanel(d, 0), opts);
  const Index a1 = localPin(p, d, "a1");
  for (Index i : p.pins[static_cast<std::size_t>(a1)].intervals) {
    const AccessInterval& iv = p.intervals[static_cast<std::size_t>(i)];
    EXPECT_GE(iv.span.lo, 7);
    EXPECT_LE(iv.span.hi, 13);
  }
}

TEST(IntervalGen, ProfitModelsDifferOnLongIntervals) {
  const Design d = fig3Design();
  Problem p = buildProblem(d, db::extractPanel(d, 0));
  std::vector<double> sqrtProfit = p.profit;
  assignProfits(p, ProfitModel::LinearSpan);
  for (std::size_t i = 0; i < p.intervals.size(); ++i) {
    const double span = static_cast<double>(p.intervals[i].span.span());
    EXPECT_NEAR(sqrtProfit[i], std::sqrt(span), 1e-12);
    EXPECT_NEAR(p.profit[i], span, 1e-12);
  }
}

TEST(IntervalGen, MultiPanelMergeKeepsPerPanelPins) {
  Design d("two", 40, 2, 10);
  const db::Index nA = d.addNet("A");
  const db::Index nB = d.addNet("B");
  d.addPin("a1", nA, Rect{Interval::point(5), Interval{2, 4}});
  d.addPin("a2", nA, Rect{Interval::point(15), Interval{2, 4}});
  d.addPin("b1", nB, Rect{Interval::point(5), Interval{12, 14}});
  d.addPin("b2", nB, Rect{Interval::point(15), Interval{12, 14}});
  const std::vector<db::Panel> panels = db::extractPanels(d);
  const Problem merged = buildProblem(d, panels);
  EXPECT_EQ(merged.pins.size(), 4u);
  // Intervals from different panels must sit on that panel's tracks.
  for (const AccessInterval& iv : merged.intervals) {
    if (iv.net == nA) {
      EXPECT_LE(iv.track, 9);
    }
    if (iv.net == nB) {
      EXPECT_GE(iv.track, 10);
    }
  }
}

}  // namespace
}  // namespace cpr::core
