/// Allocation-regression gate: this binary (and only this binary, plus the
/// benches) links `cpr::alloc_guard`, which replaces the global operator
/// new/delete with a counting pair that reports into support/alloc_hook.h.
/// The tests first prove the guard is actually live — an allocation inside
/// an armed HotRegion must be observed — and then pin the real contract:
/// `MazeRouter::findPath` performs ZERO heap allocations inside its hot
/// region, from the very first armed search on a bound scratch (reserve
/// happens outside the region, so there is no warmup forgiveness), and the
/// paths it returns are identical to the unarmed run.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "route/maze.h"
#include "support/alloc_hook.h"

namespace cpr::route {
namespace {

namespace alloc = cpr::support::alloc;

using db::Design;
using geom::Interval;
using geom::Rect;

/// Arms the hook for one scope and disarms + clears on the way out, so a
/// failing test never leaks an armed counter into its neighbors.
class ArmedScope {
 public:
  ArmedScope() {
    alloc::resetHotRegionAllocs();
    alloc::arm(true);
  }
  ArmedScope(const ArmedScope&) = delete;
  ArmedScope& operator=(const ArmedScope&) = delete;
  ~ArmedScope() {
    alloc::arm(false);
    alloc::resetHotRegionAllocs();
  }
};

Design openField() {
  Design d("maze", 30, 1, 10);
  const db::Index a = d.addNet("A");
  const db::Index b = d.addNet("B");
  d.addPin("a1", a, Rect{Interval::point(0), Interval{1, 3}});
  d.addPin("a2", a, Rect{Interval::point(29), Interval{1, 3}});
  d.addPin("b1", b, Rect{Interval::point(0), Interval{6, 8}});
  d.addPin("b2", b, Rect{Interval::point(29), Interval{6, 8}});
  return d;
}

geom::Rect fullWindow(const RoutingGrid& g) {
  return {0, 0, g.width() - 1, g.height() - 1};
}

// Negative control: without this, every zero below could be vacuous (the
// guard not linked, or the hook disarmed). A vector forced to grow inside
// an armed region must be seen by the replaced operator new.
TEST(AllocGate, GuardObservesAllocationsInsideArmedRegions) {
  ArmedScope armed;
  {
    const alloc::HotRegion region;
    std::vector<int> v;
    v.reserve(64);  // reserve also allocates; it is hot here on purpose
    v.push_back(1);
  }
  EXPECT_GT(alloc::hotRegionAllocs(), 0)
      << "cpr::alloc_guard is not intercepting operator new";
}

TEST(AllocGate, AllocationsOutsideRegionsOrWhileDisarmedAreIgnored) {
  alloc::resetHotRegionAllocs();
  alloc::arm(true);
  std::vector<int> outside(128, 7);  // no region open
  EXPECT_EQ(alloc::hotRegionAllocs(), 0);
  alloc::arm(false);
  {
    const alloc::HotRegion region;
    std::vector<int> disarmed(128, 7);  // region open but hook disarmed
  }
  EXPECT_EQ(alloc::hotRegionAllocs(), 0);
  alloc::resetHotRegionAllocs();
}

TEST(AllocGate, PauseSuppressesCountingAndNestingRestoresIt) {
  ArmedScope armed;
  {
    const alloc::HotRegion region;
    {
      const alloc::HotRegionPause pause;
      std::vector<int> cold(128, 7);  // sanctioned cold island
    }
    EXPECT_EQ(alloc::hotRegionAllocs(), 0);
    std::vector<int> hot(128, 7);  // back inside the region
  }
  EXPECT_GT(alloc::hotRegionAllocs(), 0);
}

// The gate itself. Zero from the FIRST armed search: bind() and the heap
// reserve run outside the hot region, so there is no warmup pass whose
// allocations the gate forgives.
TEST(AllocGate, MazeSearchHotRegionIsAllocationFreeFromTheFirstRun) {
  const Design d = openField();
  const RoutingGrid g(d, nullptr);
  const MazeRouter maze(g);
  MazeScratch scratch;

  const int s = g.id(Node{RLayer::M2, 1, 1});
  const int t = g.id(Node{RLayer::M2, 20, 8});

  const auto unarmed = maze.findPath({s}, {t}, fullWindow(g), 0, {}, scratch);
  ASSERT_TRUE(unarmed.has_value());

  ArmedScope armed;
  std::optional<std::vector<int>> path;
  for (int run = 0; run < 5; ++run) {
    path = maze.findPath({s}, {t}, fullWindow(g), 0, {}, scratch);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(alloc::hotRegionAllocs(), 0)
        << "hot-path allocation on armed run " << run;
  }
  EXPECT_EQ(*path, *unarmed) << "arming the gate changed the route";
}

// A fresh (never-bound) scratch allocates in bind() and in the reserve —
// but still not inside the hot region.
TEST(AllocGate, ColdScratchBindStaysOutsideTheHotRegion) {
  const Design d = openField();
  const RoutingGrid g(d, nullptr);
  const MazeRouter maze(g);

  ArmedScope armed;
  MazeScratch cold;
  const int s = g.id(Node{RLayer::M2, 2, 2});
  const int t = g.id(Node{RLayer::M2, 12, 2});
  const auto path = maze.findPath({s}, {t}, fullWindow(g), 0, {}, cold);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(alloc::hotRegionAllocs(), 0);
}

}  // namespace
}  // namespace cpr::route
