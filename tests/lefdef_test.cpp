#include <gtest/gtest.h>

#include <sstream>

#include "gen/generator.h"
#include "lefdef/def_io.h"

namespace cpr::lefdef {
namespace {

using db::Design;
using geom::Interval;
using geom::Rect;

Design sample() {
  Design d("demo", 40, 2, 10);
  const db::Index a = d.addNet("A");
  const db::Index b = d.addNet("B");
  d.addPin("a1", a, Rect{Interval::point(5), Interval{2, 4}});
  d.addPin("a2", a, Rect{Interval::point(15), Interval{3, 5}});
  d.addPin("b1", b, Rect{Interval::point(9), Interval{12, 14}});
  d.addPin("b2", b, Rect{Interval::point(30), Interval{12, 14}});
  d.addBlockage(db::Layer::M2, Rect{Interval{10, 20}, Interval{7, 7}});
  d.addBlockage(db::Layer::M3, Rect{Interval{3, 3}, Interval{0, 19}});
  return d;
}

std::string serialize(const Design& d) {
  std::ostringstream os;
  writeDef(d, os);
  return os.str();
}

TEST(DefIo, WriterEmitsExpectedRecords) {
  const std::string text = serialize(sample());
  EXPECT_NE(text.find("DESIGN demo ;"), std::string::npos);
  EXPECT_NE(text.find("DIEAREA ( 0 0 ) ( 40 20 ) ;"), std::string::npos);
  EXPECT_NE(text.find("ROWS 2 10 ;"), std::string::npos);
  EXPECT_NE(text.find("BLOCKAGES 2 ;"), std::string::npos);
  EXPECT_NE(text.find("NETS 2 ;"), std::string::npos);
  EXPECT_NE(text.find("( PIN a1 LAYER M1 RECT ( 5 2 ) ( 5 4 ) )"),
            std::string::npos);
}

TEST(DefIo, RoundTripPreservesDesign) {
  const Design orig = sample();
  std::stringstream ss;
  writeDef(orig, ss);
  const Design back = readDef(ss);

  EXPECT_EQ(back.name(), orig.name());
  EXPECT_EQ(back.width(), orig.width());
  EXPECT_EQ(back.numRows(), orig.numRows());
  EXPECT_EQ(back.tracksPerRow(), orig.tracksPerRow());
  ASSERT_EQ(back.pins().size(), orig.pins().size());
  ASSERT_EQ(back.nets().size(), orig.nets().size());
  ASSERT_EQ(back.blockages().size(), orig.blockages().size());
  for (std::size_t i = 0; i < orig.pins().size(); ++i) {
    EXPECT_EQ(back.pins()[i].name, orig.pins()[i].name);
    EXPECT_EQ(back.pins()[i].shape, orig.pins()[i].shape);
    EXPECT_EQ(back.pins()[i].net, orig.pins()[i].net);
  }
  for (std::size_t i = 0; i < orig.blockages().size(); ++i) {
    EXPECT_EQ(back.blockages()[i].layer, orig.blockages()[i].layer);
    EXPECT_EQ(back.blockages()[i].shape, orig.blockages()[i].shape);
  }
  EXPECT_EQ(back.validate(), "");
}

TEST(DefIo, RoundTripOnGeneratedDesign) {
  gen::GenOptions o;
  o.seed = 11;
  o.width = 120;
  o.numRows = 6;
  const Design orig = gen::generate(o);
  std::stringstream ss;
  writeDef(orig, ss);
  const Design back = readDef(ss);
  ASSERT_EQ(back.pins().size(), orig.pins().size());
  ASSERT_EQ(back.nets().size(), orig.nets().size());
  for (std::size_t i = 0; i < orig.pins().size(); ++i)
    EXPECT_EQ(back.pins()[i].shape, orig.pins()[i].shape);
  EXPECT_EQ(back.validate(), "");
}

TEST(DefIo, RejectsTruncatedInput) {
  std::string text = serialize(sample());
  text.resize(text.size() / 2);
  std::istringstream is(text);
  EXPECT_THROW((void)readDef(is), DefParseError);
}

TEST(DefIo, RejectsBadKeyword) {
  std::istringstream is("VERSION 5.8 ;\nGARBAGE demo ;\n");
  try {
    (void)readDef(is);
    FAIL() << "expected DefParseError";
  } catch (const DefParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(DefIo, RejectsNonM1Pin) {
  std::istringstream is(
      "VERSION 5.8 ;\nDESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\n"
      "DIEAREA ( 0 0 ) ( 10 10 ) ;\nROWS 1 10 ;\n"
      "BLOCKAGES 0 ;\nEND BLOCKAGES\nNETS 1 ;\n- n0\n"
      "( PIN p LAYER M2 RECT ( 1 1 ) ( 1 3 ) )\n;\nEND NETS\nEND DESIGN\n");
  EXPECT_THROW((void)readDef(is), DefParseError);
}

TEST(DefIo, RejectsInconsistentRowGeometry) {
  std::istringstream is(
      "VERSION 5.8 ;\nDESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\n"
      "DIEAREA ( 0 0 ) ( 10 25 ) ;\nROWS 2 10 ;\n");
  EXPECT_THROW((void)readDef(is), DefParseError);
}

TEST(DefIo, RejectsNonIntegerCoordinate) {
  std::istringstream is(
      "VERSION 5.8 ;\nDESIGN d ;\nUNITS DISTANCE MICRONS 1000 ;\n"
      "DIEAREA ( 0 0 ) ( 1x 20 ) ;\n");
  EXPECT_THROW((void)readDef(is), DefParseError);
}

TEST(DefIo, FileRoundTrip) {
  const Design orig = sample();
  const std::string path = ::testing::TempDir() + "/cpr_def_io_test.def";
  saveDef(orig, path);
  const Design back = loadDef(path);
  EXPECT_EQ(back.pins().size(), orig.pins().size());
  EXPECT_THROW((void)loadDef(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace cpr::lefdef
