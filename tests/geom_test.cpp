#include <gtest/gtest.h>

#include <random>
#include <set>

#include "geom/interval.h"
#include "geom/interval_set.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace cpr::geom {
namespace {

TEST(Interval, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.span(), 0);
  EXPECT_EQ(iv.length(), 0);
}

TEST(Interval, PointSpanAndLength) {
  const Interval iv = Interval::point(5);
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.span(), 1);
  EXPECT_EQ(iv.length(), 0);
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains(4));
}

TEST(Interval, SpanCountsGridPoints) {
  EXPECT_EQ(Interval(2, 7).span(), 6);
  EXPECT_EQ(Interval(2, 7).length(), 5);
  EXPECT_EQ(Interval(-3, 3).span(), 7);
}

TEST(Interval, OverlapIsSymmetricAndClosed) {
  const Interval a{0, 5};
  const Interval b{5, 9};
  const Interval c{6, 9};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(a.overlaps(Interval{}));
}

TEST(Interval, AbutsDetectsAdjacency) {
  EXPECT_TRUE(Interval(0, 4).abuts(Interval(5, 7)));
  EXPECT_TRUE(Interval(5, 7).abuts(Interval(0, 4)));
  EXPECT_FALSE(Interval(0, 4).abuts(Interval(4, 7)));  // overlap, not abut
  EXPECT_FALSE(Interval(0, 4).abuts(Interval(6, 7)));  // gap
}

TEST(Interval, IntersectAndHull) {
  EXPECT_EQ(intersect(Interval(0, 5), Interval(3, 9)), Interval(3, 5));
  EXPECT_TRUE(intersect(Interval(0, 2), Interval(4, 5)).empty());
  EXPECT_EQ(hull(Interval(0, 2), Interval(4, 5)), Interval(0, 5));
  EXPECT_EQ(hull(Interval{}, Interval(4, 5)), Interval(4, 5));
}

TEST(Interval, ContainsInterval) {
  EXPECT_TRUE(Interval(0, 9).contains(Interval(2, 5)));
  EXPECT_TRUE(Interval(0, 9).contains(Interval{}));  // empty always contained
  EXPECT_FALSE(Interval(0, 9).contains(Interval(5, 10)));
}

TEST(Point, Manhattan) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, 1}, {2, -1}), 6);
}

TEST(Rect, HalfPerimeterMatchesPaperWlEstimate) {
  // A 3x2-grid-point box spans lengths 2 and 1.
  const Rect r{0, 0, 2, 1};
  EXPECT_EQ(r.halfPerimeter(), 3);
  EXPECT_EQ(Rect::point({4, 4}).halfPerimeter(), 0);
}

TEST(Rect, ExpandGrowsToCover) {
  Rect r = Rect::point({5, 5});
  r.expand(Point{2, 7});
  EXPECT_TRUE(r.contains(Point{2, 7}));
  EXPECT_TRUE(r.contains(Point{5, 5}));
  EXPECT_EQ(r, Rect(2, 5, 5, 7));
  r.expand(Rect{0, 0, 1, 1});
  EXPECT_EQ(r, Rect(0, 0, 5, 7));
}

TEST(Rect, OverlapAndContains) {
  const Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.overlaps(Rect{4, 4, 8, 8}));   // closed: corner touch
  EXPECT_FALSE(a.overlaps(Rect{5, 0, 8, 4}));
  EXPECT_TRUE(a.contains(Rect{1, 1, 3, 3}));
  EXPECT_FALSE(a.contains(Rect{1, 1, 5, 3}));
}

TEST(IntervalSet, AddMergesOverlapsAndAbutments) {
  IntervalSet s;
  s.add({0, 3});
  s.add({8, 10});
  ASSERT_EQ(s.intervals().size(), 2u);
  s.add({4, 7});  // abuts both: everything merges
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals().front(), Interval(0, 10));
}

TEST(IntervalSet, SubtractSplits) {
  IntervalSet s(Interval{0, 10});
  s.subtract({4, 6});
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.intervals()[0], Interval(0, 3));
  EXPECT_EQ(s.intervals()[1], Interval(7, 10));
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.contains(3));
}

TEST(IntervalSet, SegmentContaining) {
  IntervalSet s(Interval{0, 20});
  s.subtract({5, 5});
  EXPECT_EQ(s.segmentContaining(3), Interval(0, 4));
  EXPECT_EQ(s.segmentContaining(10), Interval(6, 20));
  EXPECT_TRUE(s.segmentContaining(5).empty());
}

TEST(IntervalSet, ContainsAllRequiresSingleSegment) {
  IntervalSet s;
  s.add({0, 4});
  s.add({6, 9});
  EXPECT_TRUE(s.containsAll({1, 3}));
  EXPECT_FALSE(s.containsAll({3, 7}));  // spans the hole
}

/// Property test: IntervalSet agrees with a naive point-set model under a
/// random add/subtract workload.
class IntervalSetProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntervalSetProperty, MatchesNaiveModel) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> coordDist(0, 60);
  std::uniform_int_distribution<int> opDist(0, 1);

  IntervalSet s;
  std::set<int> model;
  for (int step = 0; step < 200; ++step) {
    int a = coordDist(rng);
    int b = coordDist(rng);
    if (a > b) std::swap(a, b);
    if (opDist(rng) == 0) {
      s.add({a, b});
      for (int v = a; v <= b; ++v) model.insert(v);
    } else {
      s.subtract({a, b});
      for (int v = a; v <= b; ++v) model.erase(v);
    }
    // Normal form: sorted, disjoint, non-abutting.
    for (std::size_t i = 0; i + 1 < s.intervals().size(); ++i) {
      ASSERT_LT(s.intervals()[i].hi + 1, s.intervals()[i + 1].lo);
    }
    // Membership agreement.
    for (int v = 0; v <= 60; ++v) {
      ASSERT_EQ(s.contains(v), model.count(v) > 0) << "point " << v;
    }
    ASSERT_EQ(s.totalSpan(), static_cast<Coord>(model.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace cpr::geom
