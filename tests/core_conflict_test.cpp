#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "core/conflict.h"

namespace cpr::core {
namespace {

using geom::Interval;

Problem problemWith(std::vector<std::pair<geom::Coord, Interval>> items) {
  Problem p;
  for (std::size_t k = 0; k < items.size(); ++k) {
    AccessInterval iv;
    iv.track = items[k].first;
    iv.span = items[k].second;
    iv.conflictSpan = items[k].second;  // no spacing guard in these tests
    iv.net = static_cast<Index>(k);     // all diff-net
    p.intervals.push_back(iv);
  }
  p.profit.assign(p.intervals.size(), 1.0);
  return p;
}

std::set<std::set<Index>> asSets(const std::vector<ConflictSet>& cs) {
  std::set<std::set<Index>> out;
  for (const ConflictSet& c : cs)
    out.insert(std::set<Index>(c.intervals.begin(), c.intervals.end()));
  return out;
}

TEST(Conflict, DisjointIntervalsNoConflicts) {
  Problem p = problemWith({{0, {0, 3}}, {0, {5, 8}}, {0, {10, 12}}});
  detectConflicts(p);
  EXPECT_TRUE(p.conflicts.empty());
}

TEST(Conflict, SingleOverlapPair) {
  Problem p = problemWith({{0, {0, 5}}, {0, {4, 9}}});
  detectConflicts(p);
  ASSERT_EQ(p.conflicts.size(), 1u);
  EXPECT_EQ(p.conflicts[0].intervals.size(), 2u);
  EXPECT_EQ(p.conflicts[0].common, Interval(4, 5));
}

TEST(Conflict, ChainYieldsTwoMaximalCliques) {
  // a-[0,5], b-[4,9], c-[8,12]: cliques {a,b} and {b,c}, not {a,b,c}.
  Problem p = problemWith({{0, {0, 5}}, {0, {4, 9}}, {0, {8, 12}}});
  detectConflicts(p);
  const auto sets = asSets(p.conflicts);
  EXPECT_EQ(sets.size(), 2u);
  EXPECT_TRUE(sets.count({0, 1}));
  EXPECT_TRUE(sets.count({1, 2}));
}

TEST(Conflict, TracksAreIndependent) {
  Problem p = problemWith({{0, {0, 5}}, {1, {0, 5}}, {0, {3, 8}}});
  detectConflicts(p);
  ASSERT_EQ(p.conflicts.size(), 1u);
  EXPECT_EQ(p.conflicts[0].track, 0);
}

TEST(Conflict, Figure4LikeStack) {
  // Five nested intervals sharing a common core plus one off to the right:
  // the scanline must emit the big clique and the right pair.
  Problem p = problemWith({{0, {0, 20}},
                           {0, {2, 18}},
                           {0, {4, 16}},
                           {0, {6, 14}},
                           {0, {8, 12}},
                           {0, {15, 30}}});
  detectConflicts(p);
  const auto sets = asSets(p.conflicts);
  EXPECT_TRUE(sets.count({0, 1, 2, 3, 4}));
  // Intervals with hi >= 15: ids 0(20),1(18),2(16),5.
  EXPECT_TRUE(sets.count({0, 1, 2, 5}));
  EXPECT_EQ(sets.size(), 2u);
}

TEST(Conflict, CommonIntersectionIsTight) {
  Problem p = problemWith({{0, {0, 10}}, {0, {5, 15}}, {0, {7, 9}}});
  detectConflicts(p);
  ASSERT_EQ(p.conflicts.size(), 1u);
  EXPECT_EQ(p.conflicts[0].common, Interval(7, 9));  // L_m = 3
  EXPECT_EQ(p.conflicts[0].common.span(), 3);
}

TEST(Conflict, IdenticalIntervalsFormOneClique) {
  Problem p = problemWith({{0, {3, 7}}, {0, {3, 7}}, {0, {3, 7}}});
  detectConflicts(p);
  ASSERT_EQ(p.conflicts.size(), 1u);
  EXPECT_EQ(p.conflicts[0].intervals.size(), 3u);
}

/// Property: the scanline agrees with the brute-force maximal-clique
/// enumeration on random interval families, and the clique count stays
/// linear in the interval count (paper Section 3.2).
class ConflictProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ConflictProperty, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nDist(1, 40);
  std::uniform_int_distribution<int> coordDist(0, 50);
  std::uniform_int_distribution<int> trackDist(0, 2);

  for (int round = 0; round < 50; ++round) {
    std::vector<std::pair<geom::Coord, Interval>> items;
    const int n = nDist(rng);
    for (int k = 0; k < n; ++k) {
      int a = coordDist(rng);
      int b = coordDist(rng);
      if (a > b) std::swap(a, b);
      items.push_back({trackDist(rng), {a, b}});
    }
    Problem p = problemWith(items);
    detectConflicts(p);
    const auto scan = asSets(p.conflicts);
    const auto ref = asSets(detectConflictsBruteForce(p));
    EXPECT_EQ(scan, ref) << "round " << round;
    EXPECT_LE(p.conflicts.size(), items.size());  // linear bound
    // Every clique's members truly share the recorded common range.
    for (const ConflictSet& cs : p.conflicts) {
      ASSERT_FALSE(cs.common.empty());
      for (Index i : cs.intervals) {
        EXPECT_TRUE(
            p.intervals[static_cast<std::size_t>(i)].span.contains(cs.common));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictProperty,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u, 36u));

}  // namespace
}  // namespace cpr::core
