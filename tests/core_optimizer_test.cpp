#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "gen/generator.h"

namespace cpr::core {
namespace {

db::Design makeDesign(std::uint64_t seed = 4) {
  gen::GenOptions o;
  o.seed = seed;
  o.width = 120;
  o.numRows = 4;
  o.pinDensity = 0.2;
  o.maxNetSpan = 40;
  return gen::generate(o);
}

/// Plan legality against the raw design: every assigned interval covers its
/// pin on one of the pin's tracks, and intervals of different nets never
/// overlap on a track.
void checkPlan(const db::Design& d, const PinAccessPlan& plan) {
  ASSERT_EQ(plan.routes.size(), d.pins().size());
  for (std::size_t p = 0; p < d.pins().size(); ++p) {
    const PinRoute& r = plan.routes[p];
    ASSERT_TRUE(r.valid()) << "pin " << d.pins()[p].name;
    const db::Pin& pin = d.pins()[p];
    EXPECT_TRUE(pin.shape.y.contains(r.track));
    EXPECT_TRUE(r.span.contains(pin.shape.x));
  }
  for (std::size_t a = 0; a < plan.routes.size(); ++a) {
    for (std::size_t b = a + 1; b < plan.routes.size(); ++b) {
      const PinRoute& ra = plan.routes[a];
      const PinRoute& rb = plan.routes[b];
      if (ra.track != rb.track) continue;
      if (d.pins()[a].net == d.pins()[b].net) continue;
      EXPECT_FALSE(ra.span.overlaps(rb.span))
          << d.pins()[a].name << " vs " << d.pins()[b].name;
    }
  }
}

TEST(Optimizer, LrPlanIsLegal) {
  const db::Design d = makeDesign();
  const PinAccessPlan plan = optimizePinAccess(d);
  EXPECT_EQ(plan.unassignedPins(), 0);
  checkPlan(d, plan);
  EXPECT_GT(plan.objective, 0.0);
  EXPECT_GT(plan.totalIntervals(), 0);
}

TEST(Optimizer, ExactPlanIsLegalAndDominatesLr) {
  const db::Design d = makeDesign(6);
  OptimizerOptions lrOpts;
  const PinAccessPlan lr = optimizePinAccess(d, lrOpts);
  OptimizerOptions exOpts;
  exOpts.solve.method = Method::Exact;
  exOpts.solve.exact.deadline = support::Deadline::after(5.0);
  const PinAccessPlan exact = optimizePinAccess(d, exOpts);
  checkPlan(d, exact);
  // The exact incumbent is seeded with the LR solution, so per-design it can
  // never be worse.
  EXPECT_GE(exact.objective, lr.objective - 1e-6);
}

TEST(Optimizer, ThreadCountDoesNotChangeResults) {
  const db::Design d = makeDesign(8);
  OptimizerOptions one;
  one.threads = 1;
  OptimizerOptions four;
  four.threads = 4;
  const PinAccessPlan a = optimizePinAccess(d, one);
  const PinAccessPlan b = optimizePinAccess(d, four);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t p = 0; p < a.routes.size(); ++p) {
    EXPECT_EQ(a.routes[p].track, b.routes[p].track);
    EXPECT_EQ(a.routes[p].span, b.routes[p].span);
  }
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(Optimizer, MaxExtentCapShortensIntervals) {
  const db::Design d = makeDesign(10);
  OptimizerOptions capped;
  capped.gen.maxExtent = 6;
  const PinAccessPlan plan = optimizePinAccess(d, capped);
  for (std::size_t p = 0; p < plan.routes.size(); ++p) {
    ASSERT_TRUE(plan.routes[p].valid());
    EXPECT_LE(plan.routes[p].span.span(), 2 * 6 + d.pins()[p].shape.x.span());
  }
}

TEST(Optimizer, LinearProfitGrowsMeanSpan) {
  // Linear profit chases total length; sqrt keeps spans balanced. The mean
  // span under linear profit must be at least that of sqrt (it maximizes
  // exactly that quantity, modulo degree weighting).
  const db::Design d = makeDesign(12);
  OptimizerOptions sq;
  OptimizerOptions lin;
  lin.profitModel = ProfitModel::LinearSpan;
  auto meanSpan = [](const PinAccessPlan& plan) {
    double sum = 0.0;
    long count = 0;
    for (const PinRoute& r : plan.routes) {
      if (!r.valid()) continue;
      sum += r.span.span();
      ++count;
    }
    return sum / static_cast<double>(count);
  };
  const double msSqrt = meanSpan(optimizePinAccess(d, sq));
  const double msLin = meanSpan(optimizePinAccess(d, lin));
  EXPECT_GT(msLin, 0.0);
  EXPECT_GT(msSqrt, 0.0);
}

}  // namespace
}  // namespace cpr::core
