/// Serve-layer unit tests: the wire codec (decode arbitrary bytes safely,
/// round-trip every frame kind), the bounded two-lane job queue (admission
/// control, lane priority, retry gating, shutdown drain), the backoff
/// policy, and the shared exit-code table.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"  // tools/cli.h: the shared exit-code table
#include "obs/names.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "support/backoff.h"
#include "support/status.h"

namespace cpr::serve {
namespace {

// ---------------------------------------------------------------- codec --

TEST(ServeCodec, RouteRequestRoundTripsThroughEncodeDecode) {
  RouteRequest r;
  r.id = "job-42";
  r.design = "ecc";
  r.scheme = "cpr";
  r.pinAccess = "ilp";
  r.priority = Priority::Interactive;
  r.budgetSeconds = 2.5;
  r.seed = 99;
  const Request back = decodeRequest(encodeRouteRequest(r));
  ASSERT_EQ(back.kind, Request::Kind::Route) << back.error;
  EXPECT_EQ(back.route.id, "job-42");
  EXPECT_EQ(back.route.design, "ecc");
  EXPECT_EQ(back.route.pinAccess, "ilp");
  EXPECT_EQ(back.route.priority, Priority::Interactive);
  EXPECT_DOUBLE_EQ(back.route.budgetSeconds, 2.5);
  EXPECT_EQ(back.route.seed, 99U);
}

TEST(ServeCodec, InlineDefPayloadSurvivesEscaping) {
  RouteRequest r;
  r.id = "d";
  r.defText = "VERSION 5.8 ;\nDESIGN \"quoted\" ;\n\tEND DESIGN\n";
  const Request back = decodeRequest(encodeRouteRequest(r));
  ASSERT_EQ(back.kind, Request::Kind::Route) << back.error;
  EXPECT_EQ(back.route.defText, r.defText);
}

TEST(ServeCodec, ControlFramesRoundTrip) {
  EXPECT_EQ(decodeRequest(encodePing()).kind, Request::Kind::Ping);
  EXPECT_EQ(decodeRequest(encodeStatsRequest()).kind, Request::Kind::Stats);
  EXPECT_EQ(decodeRequest(encodeShutdownRequest()).kind,
            Request::Kind::Shutdown);
  EXPECT_EQ(decodeReply(encodePong()).kind, Reply::Kind::Pong);
  const Reply err = decodeReply(encodeError("what \"happened\""));
  EXPECT_EQ(err.kind, Reply::Kind::Error);
  EXPECT_EQ(err.detail, "what \"happened\"");
}

TEST(ServeCodec, ResultFrameRoundTripsWithMetrics) {
  JobResult r;
  r.id = "j";
  r.event = std::string(obs::names::kServeEvCompleted);
  r.status = "timed_out";
  r.detail = "budget fired";
  r.routability = 98.75;
  r.vias = 1234;
  r.wirelength = 56789;
  r.seconds = 1.5;
  r.attempts = 2;
  r.digest = "00ff00ff00ff00ff";
  const Reply back = decodeReply(encodeResult(r));
  ASSERT_EQ(back.kind, Reply::Kind::Result);
  EXPECT_EQ(back.result.status, "timed_out");
  EXPECT_DOUBLE_EQ(back.result.routability, 98.75);
  EXPECT_EQ(back.result.vias, 1234);
  EXPECT_EQ(back.result.wirelength, 56789);
  EXPECT_EQ(back.result.attempts, 2);
  EXPECT_EQ(back.result.digest, "00ff00ff00ff00ff");
  EXPECT_TRUE(isTerminalEvent(back.event));
}

TEST(ServeCodec, EventFramesAreNotTerminal) {
  const Reply ev = decodeReply(
      encodeEvent("j", obs::names::kServeEvAccepted, 0, 3.0));
  EXPECT_EQ(ev.kind, Reply::Kind::Event);
  EXPECT_EQ(ev.id, "j");
  EXPECT_DOUBLE_EQ(ev.queueDepth, 3.0);
  EXPECT_FALSE(isTerminalEvent(ev.event));
}

TEST(ServeCodec, StatsReplyCarriesCountersVerbatim) {
  std::map<std::string, long, std::less<>> counters;
  counters[std::string(obs::names::kServeJobsAccepted)] = 7;
  counters[std::string(obs::names::kServeJobsRejected)] = 2;
  const Reply back = decodeReply(encodeStatsReply(counters));
  ASSERT_EQ(back.kind, Reply::Kind::Stats);
  const std::string accepted =
      "\"" + std::string(obs::names::kServeJobsAccepted) + "\":7";
  const std::string rejected =
      "\"" + std::string(obs::names::kServeJobsRejected) + "\":2";
  EXPECT_NE(back.countersRaw.find(accepted), std::string::npos);
  EXPECT_NE(back.countersRaw.find(rejected), std::string::npos);
}

TEST(ServeCodec, MalformedFramesReportInvalidNeverCrash) {
  const char* cases[] = {
      "",
      "not json",
      "{",
      "[]",
      "{\"v\":\"cpr.serve.v1\"}",                      // no op
      "{\"v\":\"wrong.version\",\"op\":\"ping\"}",     // bad version
      "{\"op\":\"ping\"}",                             // missing version
      "{\"v\":\"cpr.serve.v1\",\"op\":\"teleport\"}",  // unknown op
      "{\"v\":\"cpr.serve.v1\",\"op\":\"route\"}",     // no id
      "{\"v\":\"cpr.serve.v1\",\"op\":\"route\",\"id\":\"x\"}",  // no design
      "{\"v\":\"cpr.serve.v1\",\"op\":\"route\",\"id\":\"x\","
      "\"design\":\"ecc\",\"def\":\"both\"}",          // both sources
      "{\"v\":\"cpr.serve.v1\",\"op\":\"route\",\"id\":\"x\","
      "\"design\":\"ecc\",\"scheme\":\"warp\"}",       // bad scheme
      "{\"v\":\"cpr.serve.v1\",\"op\":\"route\",\"id\":\"x\","
      "\"design\":\"ecc\",\"budget_seconds\":-1}",     // negative budget
      "{\"v\":\"cpr.serve.v1\",\"op\":\"route\",\"id\":\"x\","
      "\"design\":\"ecc\",\"budget_seconds\":1e99}",   // absurd budget
      "{\"key\":}",
      "{\"key\":\"unterminated",
      "{\"key\":\"bad\\escape\"}",
      "{\"a\":1,}",
      "{\"a\":1}trailing",
      "{\"a\":{\"deep\":[{\"un\":\"balanced\"}]}",     // missing brace
  };
  for (const char* line : cases) {
    const Request req = decodeRequest(line);
    EXPECT_EQ(req.kind, Request::Kind::Invalid) << line;
    EXPECT_FALSE(req.error.empty()) << line;
  }
}

TEST(ServeCodec, UnknownKeysAndNestedValuesAreTolerated) {
  const Request req = decodeRequest(
      "{\"v\":\"cpr.serve.v1\",\"op\":\"route\",\"id\":\"x\","
      "\"design\":\"ecc\",\"future_field\":{\"a\":[1,2,{}]},\"flag\":true,"
      "\"unicode\":\"\\u0041\\u00e9\"}");
  EXPECT_EQ(req.kind, Request::Kind::Route) << req.error;
}

TEST(ServeCodec, DuplicateKeysKeepTheLastValueAcrossTypes) {
  // Same type: last wins (always worked).
  const Request sameType = decodeRequest(
      "{\"v\":\"cpr.serve.v1\",\"op\":\"stats\",\"op\":\"ping\"}");
  EXPECT_EQ(sameType.kind, Request::Kind::Ping);
  // String then number: the number must EVICT the stale string — a stale
  // "ping" here would silently turn a malformed frame into a valid op.
  const Request strThenNum = decodeRequest(
      "{\"v\":\"cpr.serve.v1\",\"op\":\"ping\",\"op\":5}");
  EXPECT_EQ(strThenNum.kind, Request::Kind::Invalid);
  EXPECT_NE(strThenNum.error.find("missing \"op\""), std::string::npos)
      << strThenNum.error;
  // Number then string: the string occurrence is the one that counts.
  const Request numThenStr = decodeRequest(
      "{\"v\":\"cpr.serve.v1\",\"op\":5,\"op\":\"ping\"}");
  EXPECT_EQ(numThenStr.kind, Request::Kind::Ping) << numThenStr.error;
  // Number fields shadowed by a later string are gone, not stale: the
  // budget falls back to "unset", it does not read the first occurrence.
  const Request budget = decodeRequest(
      "{\"v\":\"cpr.serve.v1\",\"op\":\"route\",\"id\":\"x\","
      "\"design\":\"ecc\",\"budget_seconds\":4.5,\"budget_seconds\":\"x\"}");
  ASSERT_EQ(budget.kind, Request::Kind::Route) << budget.error;
  EXPECT_DOUBLE_EQ(budget.route.budgetSeconds, 0.0);
  // Raw (nested) values participate in the same namespace.
  const Reply stats = decodeReply(
      "{\"v\":\"cpr.serve.v1\",\"event\":\"stats\","
      "\"counters\":{\"a\":1},\"counters\":\"gone\"}");
  ASSERT_EQ(stats.kind, Reply::Kind::Stats);
  EXPECT_TRUE(stats.countersRaw.empty()) << stats.countersRaw;
}

// ---------------------------------------------------------------- queue --

Job makeJob(std::string id, Priority prio, std::uint64_t serial) {
  Job j;
  j.request.id = std::move(id);
  j.request.priority = prio;
  j.serial = serial;
  return j;
}

TEST(ServeQueue, AdmitsUpToLaneCapacityThenRejects) {
  BoundedJobQueue q(2);
  std::size_t lastDepth = 0;
  const auto onAdmit = [&](std::size_t d) { lastDepth = d; };
  EXPECT_TRUE(q.tryPush(makeJob("a", Priority::Batch, 0), onAdmit));
  EXPECT_TRUE(q.tryPush(makeJob("b", Priority::Batch, 1), onAdmit));
  EXPECT_EQ(lastDepth, 2U);
  EXPECT_FALSE(q.tryPush(makeJob("c", Priority::Batch, 2), onAdmit));
  // Lanes are bounded independently: interactive still has room.
  EXPECT_TRUE(q.tryPush(makeJob("d", Priority::Interactive, 3), onAdmit));
  EXPECT_EQ(q.depth(), 3U);
  EXPECT_EQ(q.peakDepth(), 3U);
}

TEST(ServeQueue, InteractiveLanePopsBeforeBatch) {
  BoundedJobQueue q(4);
  ASSERT_TRUE(q.tryPush(makeJob("batch1", Priority::Batch, 0)));
  ASSERT_TRUE(q.tryPush(makeJob("batch2", Priority::Batch, 1)));
  ASSERT_TRUE(q.tryPush(makeJob("inter1", Priority::Interactive, 2)));
  std::optional<Job> j = q.pop();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->request.id, "inter1");
  j = q.pop();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->request.id, "batch1");
}

TEST(ServeQueue, RetryIsInvisibleUntilItsBackoffExpires) {
  BoundedJobQueue q(4);
  Job retry = makeJob("retry", Priority::Batch, 0);
  retry.readyAt = support::Deadline::after(0.05);
  ASSERT_TRUE(q.pushRetry(std::move(retry)));
  ASSERT_TRUE(q.tryPush(makeJob("fresh", Priority::Batch, 1)));
  // The fresh job pops first even though the retry is ahead of it.
  std::optional<Job> j = q.pop();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->request.id, "fresh");
  // The retry becomes eligible once its gate expires; pop blocks until then.
  j = q.pop();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->request.id, "retry");
  EXPECT_TRUE(j->readyAt.expired());
}

TEST(ServeQueue, PushRetryBypassesCapacity) {
  BoundedJobQueue q(1);
  ASSERT_TRUE(q.tryPush(makeJob("a", Priority::Batch, 0)));
  EXPECT_FALSE(q.tryPush(makeJob("b", Priority::Batch, 1)));
  EXPECT_TRUE(q.pushRetry(makeJob("r", Priority::Batch, 2)));
  EXPECT_EQ(q.depth(), 2U);
}

TEST(ServeQueue, CloseUnblocksAPopBlockedOnAnEmptyQueue) {
  BoundedJobQueue q(4);
  std::thread popper([&] { EXPECT_FALSE(q.pop().has_value()); });
  // No sequencing needed: whether pop is already parked in its wait or has
  // not reached it yet, close() must make it return nullopt.
  q.close();
  popper.join();
}

TEST(ServeQueue, PopAfterCloseYieldsNothingAndDrainReturnsAdmissionOrder) {
  BoundedJobQueue q(4);
  ASSERT_TRUE(q.tryPush(makeJob("b0", Priority::Batch, 0)));
  ASSERT_TRUE(q.tryPush(makeJob("i1", Priority::Interactive, 1)));
  ASSERT_TRUE(q.tryPush(makeJob("b2", Priority::Batch, 2)));
  q.close();
  // After close, pop returns nullopt even though jobs remain: leftovers
  // belong to drainRemaining, not to workers.
  EXPECT_FALSE(q.pop().has_value());
  const std::vector<Job> drained = q.drainRemaining();
  ASSERT_EQ(drained.size(), 3U);
  EXPECT_EQ(drained[0].request.id, "b0");
  EXPECT_EQ(drained[1].request.id, "i1");
  EXPECT_EQ(drained[2].request.id, "b2");
  EXPECT_FALSE(q.tryPush(makeJob("late", Priority::Batch, 3)));
  EXPECT_FALSE(q.pushRetry(makeJob("late2", Priority::Batch, 4)));
}

// -------------------------------------------------------------- backoff --

TEST(Backoff, GrowsExponentiallyAndSaturates) {
  support::BackoffPolicy p;
  p.jitterFraction = 0.0;  // isolate the growth curve
  EXPECT_DOUBLE_EQ(p.delaySeconds(1, 0), 0.05);
  EXPECT_DOUBLE_EQ(p.delaySeconds(2, 0), 0.10);
  EXPECT_DOUBLE_EQ(p.delaySeconds(3, 0), 0.20);
  EXPECT_DOUBLE_EQ(p.delaySeconds(20, 0), p.maxSeconds);
  EXPECT_DOUBLE_EQ(p.delaySeconds(0, 0), 0.05);  // clamped to attempt 1
}

TEST(Backoff, JitterIsDeterministicAndBounded) {
  support::BackoffPolicy p;
  for (std::uint64_t noise = 0; noise < 64; ++noise) {
    for (int attempt = 1; attempt <= 4; ++attempt) {
      const double a = p.delaySeconds(attempt, noise);
      const double b = p.delaySeconds(attempt, noise);
      EXPECT_DOUBLE_EQ(a, b) << "jitter must be a pure function";
      support::BackoffPolicy flat = p;
      flat.jitterFraction = 0.0;
      const double base = flat.delaySeconds(attempt, noise);
      EXPECT_GE(a, base * (1.0 - p.jitterFraction) - 1e-12);
      EXPECT_LE(a, base * (1.0 + p.jitterFraction) + 1e-12);
    }
  }
  // Different noise must actually spread retries out (not all identical).
  const double d1 = p.delaySeconds(1, 1);
  const double d2 = p.delaySeconds(1, 2);
  EXPECT_NE(d1, d2);
}

// ------------------------------------------------------------ exit codes --

TEST(ExitCodes, TableCoversEveryStatusCode) {
  using support::StatusCode;
  EXPECT_EQ(cli::exitCodeFor(StatusCode::Ok), 0);
  EXPECT_EQ(cli::exitCodeFor(StatusCode::Infeasible), 3);
  EXPECT_EQ(cli::exitCodeFor(StatusCode::Degraded), 4);
  EXPECT_EQ(cli::exitCodeFor(StatusCode::TimedOut), 4);
  EXPECT_EQ(cli::exitCodeFor(StatusCode::Failed), 5);
  EXPECT_EQ(cli::exitCodeFor(StatusCode::Cancelled), 6);
}

TEST(ExitCodes, StatusNamesRoundTripThroughTheWireFormat) {
  using support::StatusCode;
  for (const StatusCode code :
       {StatusCode::Ok, StatusCode::Degraded, StatusCode::TimedOut,
        StatusCode::Infeasible, StatusCode::Failed, StatusCode::Cancelled}) {
    EXPECT_EQ(support::statusCodeFromName(support::statusCodeName(code)),
              code);
  }
  EXPECT_EQ(support::statusCodeFromName("garbage"),
            StatusCode::Failed);  // conservative default
}

TEST(Status, CancelledIsAFailureWithNoResult) {
  const support::Status st = support::Status::cancelled("queue full");
  EXPECT_EQ(st.code(), support::StatusCode::Cancelled);
  EXPECT_TRUE(st.isFailure());
  EXPECT_EQ(st.toString(), "cancelled (queue full)");
}

}  // namespace
}  // namespace cpr::serve
