#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cpr::support {
namespace {

TEST(ThreadPool, ClampThreadsResolvesZeroAndNegativeToHardware) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int expect = hw > 0 ? hw : 1;
  EXPECT_EQ(ThreadPool::clampThreads(0), expect);
  EXPECT_EQ(ThreadPool::clampThreads(-3), expect);
  EXPECT_EQ(ThreadPool::clampThreads(1), 1);
  EXPECT_EQ(ThreadPool::clampThreads(5), 5);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallelFor(kCount, [&](int worker, std::size_t k) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.size());
    hits[k].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t k = 0; k < kCount; ++k) EXPECT_EQ(hits[k].load(), 1);
}

TEST(ThreadPool, SizeOneRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallelFor(16, [&](int worker, std::size_t k) {
    EXPECT_EQ(worker, 0);
    order.push_back(k);
  });
  std::vector<std::size_t> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, CountZeroIsANoop) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallelFor(0, [&](int, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(64,
                       [&](int, std::size_t k) {
                         if (k == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must come back clean: the next wave covers everything again.
  std::vector<std::atomic<int>> hits(64);
  pool.parallelFor(64, [&](int, std::size_t k) {
    hits[k].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t k = 0; k < 64; ++k) EXPECT_EQ(hits[k].load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyWaves) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int wave = 0; wave < 50; ++wave) {
    pool.parallelFor(10, [&](int, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, PostRunsTasksAndDrainWaitsForAllOfThem) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.post([&] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 100);
  // drain() must wait for running tasks too, not just an empty queue: park
  // every spawned worker in a slow task and check the count after drain.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.post([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 108);
}

TEST(ThreadPool, Size1PostRunsInlineBeforeReturning) {
  ThreadPool pool(1);
  bool ran = false;
  ASSERT_TRUE(pool.post([&] { ran = true; }));
  EXPECT_TRUE(ran);  // no spawned workers: post itself ran the task
}

TEST(ThreadPool, DestructionWithTasksStillQueuedDoesNotHangOrCrash) {
  // A pool torn down with a deep backlog must exit promptly: queued tasks
  // are destroyed unrun, the in-flight ones are joined. The counter proves
  // both ends — at least the running tasks happened, and nothing ran after
  // the destructor returned.
  std::atomic<int> ran{0};
  int posted = 0;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      if (pool.post([&] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            ran.fetch_add(1, std::memory_order_relaxed);
          })) {
        ++posted;
      }
    }
    // No drain: the destructor runs with most of the backlog still queued.
  }
  const int afterDtor = ran.load();
  EXPECT_LE(afterDtor, posted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(), afterDtor) << "a task ran after the pool was gone";
}

TEST(ThreadPool, TaskExceptionSurfacesFromDrainOnceAndPoolStaysUsable) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.post([] { throw std::runtime_error("task boom"); }));
  EXPECT_THROW(pool.drain(), std::runtime_error);
  // The error was claimed by that drain: the pool is clean again.
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.post([&] { ran.fetch_add(1, std::memory_order_relaxed); }));
  pool.drain();  // must not rethrow
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ExceptionDuringDestructorDrainIsContained) {
  // Throwing tasks racing pool destruction must never reach terminate():
  // the destructor joins running tasks and discards their captured error.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.post([&] {
        ran.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("boom during teardown");
      });
    }
  }  // destructor: if containment is broken this test dies, not fails
  EXPECT_GE(ran.load(), 0);
}

TEST(ThreadPool, PostAndParallelForErrorChannelsAreIndependent) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.post([] { throw std::runtime_error("task error"); }));
  // A parallelFor wave between the post and the drain must not steal or
  // trip over the captured task error.
  std::atomic<int> waveHits{0};
  pool.parallelFor(10, [&](int, std::size_t) {
    waveHits.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(waveHits.load(), 10);
  EXPECT_THROW(pool.drain(), std::runtime_error);
}

}  // namespace
}  // namespace cpr::support
