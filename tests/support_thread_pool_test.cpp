#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cpr::support {
namespace {

TEST(ThreadPool, ClampThreadsResolvesZeroAndNegativeToHardware) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int expect = hw > 0 ? hw : 1;
  EXPECT_EQ(ThreadPool::clampThreads(0), expect);
  EXPECT_EQ(ThreadPool::clampThreads(-3), expect);
  EXPECT_EQ(ThreadPool::clampThreads(1), 1);
  EXPECT_EQ(ThreadPool::clampThreads(5), 5);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallelFor(kCount, [&](int worker, std::size_t k) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.size());
    hits[k].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t k = 0; k < kCount; ++k) EXPECT_EQ(hits[k].load(), 1);
}

TEST(ThreadPool, SizeOneRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallelFor(16, [&](int worker, std::size_t k) {
    EXPECT_EQ(worker, 0);
    order.push_back(k);
  });
  std::vector<std::size_t> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, CountZeroIsANoop) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallelFor(0, [&](int, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(64,
                       [&](int, std::size_t k) {
                         if (k == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must come back clean: the next wave covers everything again.
  std::vector<std::atomic<int>> hits(64);
  pool.parallelFor(64, [&](int, std::size_t k) {
    hits[k].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t k = 0; k < 64; ++k) EXPECT_EQ(hits[k].load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyWaves) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int wave = 0; wave < 50; ++wave) {
    pool.parallelFor(10, [&](int, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500);
}

}  // namespace
}  // namespace cpr::support
