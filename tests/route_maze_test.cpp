#include <gtest/gtest.h>

#include "route/maze.h"

namespace cpr::route {
namespace {

using db::Design;
using db::Layer;
using geom::Interval;
using geom::Rect;

/// Empty single-row design: 30 columns, 10 tracks, two stub pins so that the
/// grid has two distinct nets to reason about.
Design openField() {
  Design d("maze", 30, 1, 10);
  const db::Index a = d.addNet("A");
  const db::Index b = d.addNet("B");
  d.addPin("a1", a, Rect{Interval::point(0), Interval{1, 3}});
  d.addPin("a2", a, Rect{Interval::point(29), Interval{1, 3}});
  d.addPin("b1", b, Rect{Interval::point(0), Interval{6, 8}});
  d.addPin("b2", b, Rect{Interval::point(29), Interval{6, 8}});
  return d;
}

geom::Rect fullWindow(const RoutingGrid& g) {
  return {0, 0, g.width() - 1, g.height() - 1};
}

TEST(Maze, StraightTrackPath) {
  Design d = openField();
  RoutingGrid g(d, nullptr);
  MazeRouter maze(g);
  const int s = g.id(Node{RLayer::M2, 2, 2});
  const int t = g.id(Node{RLayer::M2, 12, 2});
  const auto path = maze.findPath({s}, {t}, fullWindow(g), 0, {});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 11u);  // straight run of 11 nodes
  EXPECT_EQ(path->front(), s);
  EXPECT_EQ(path->back(), t);
}

TEST(Maze, SourceIsTargetYieldsTrivialPath) {
  Design d = openField();
  RoutingGrid g(d, nullptr);
  MazeRouter maze(g);
  const int s = g.id(Node{RLayer::M2, 4, 4});
  const auto path = maze.findPath({s}, {s}, fullWindow(g), 0, {});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(Maze, TrackChangeUsesVias) {
  Design d = openField();
  RoutingGrid g(d, nullptr);
  MazeRouter maze(g);
  const int s = g.id(Node{RLayer::M2, 5, 2});
  const int t = g.id(Node{RLayer::M2, 5, 7});
  const auto path = maze.findPath({s}, {t}, fullWindow(g), 0, {});
  ASSERT_TRUE(path.has_value());
  // M2 -> via -> M3 run -> via -> M2: two layer changes.
  int layerChanges = 0;
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    if ((g.node((*path)[i]).layer) != (g.node((*path)[i + 1]).layer))
      ++layerChanges;
  }
  EXPECT_EQ(layerChanges, 2);
}

TEST(Maze, UnidirectionalMovesOnly) {
  Design d = openField();
  RoutingGrid g(d, nullptr);
  MazeRouter maze(g);
  const int s = g.id(Node{RLayer::M2, 1, 1});
  const int t = g.id(Node{RLayer::M2, 20, 8});
  const auto path = maze.findPath({s}, {t}, fullWindow(g), 0, {});
  ASSERT_TRUE(path.has_value());
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    const Node u = g.node((*path)[i]);
    const Node v = g.node((*path)[i + 1]);
    if (u.layer == v.layer) {
      if (u.layer == RLayer::M2) {
        EXPECT_EQ(u.y, v.y);  // horizontal only
        EXPECT_EQ(std::abs(u.x - v.x), 1);
      } else {
        EXPECT_EQ(u.x, v.x);  // vertical only
        EXPECT_EQ(std::abs(u.y - v.y), 1);
      }
    } else {
      EXPECT_EQ(u.x, v.x);
      EXPECT_EQ(u.y, v.y);  // vias are in-place
    }
  }
}

TEST(Maze, OtherNetPinProjectionIsHardWall) {
  Design d("wall", 30, 1, 10);
  const db::Index a = d.addNet("A");
  const db::Index b = d.addNet("B");
  d.addPin("a1", a, Rect{Interval::point(0), Interval{4, 4}});
  d.addPin("a2", a, Rect{Interval::point(29), Interval{4, 4}});
  // Net B's pin blocks track 4 columns 14..15 for net A.
  d.addPin("b1", b, Rect{Interval{14, 15}, Interval{3, 5}});
  d.addPin("b2", b, Rect{Interval::point(20), Interval{7, 8}});
  RoutingGrid g(d, nullptr);
  MazeRouter maze(g);
  const int s = g.id(Node{RLayer::M2, 2, 4});
  const int t = g.id(Node{RLayer::M2, 27, 4});
  const auto path = maze.findPath({s}, {t}, fullWindow(g), a, {});
  ASSERT_TRUE(path.has_value());
  for (int id : *path) {
    const db::Index owner = id < g.planeSize() ? g.pinNetAt(id) : geom::kInvalidIndex;
    EXPECT_TRUE(owner == geom::kInvalidIndex || owner == a);
  }
  // Net B itself may use its own projection.
  const auto own = maze.findPath({g.id(Node{RLayer::M2, 14, 4})},
                                 {g.id(Node{RLayer::M2, 15, 4})},
                                 fullWindow(g), b, {});
  ASSERT_TRUE(own.has_value());
  EXPECT_EQ(own->size(), 2u);
}

TEST(Maze, HardBlockOccupiedMode) {
  Design d = openField();
  RoutingGrid g(d, nullptr);
  // Wall of occupancy across the row on every track except 9, column 10.
  for (geom::Coord y = 0; y < 9; ++y)
    g.addOcc(g.id(Node{RLayer::M2, 10, y}));
  for (geom::Coord y = 0; y < 9; ++y)
    g.addOcc(g.id(Node{RLayer::M3, 10, y}));
  MazeRouter maze(g);
  MazeCosts hard;
  hard.hardBlockOccupied = true;
  const int s = g.id(Node{RLayer::M2, 2, 2});
  const int t = g.id(Node{RLayer::M2, 20, 2});
  const auto path = maze.findPath({s}, {t}, fullWindow(g), 0, hard);
  ASSERT_TRUE(path.has_value());
  for (int id : *path) EXPECT_EQ(g.occupancy(id), 0);
}

TEST(Maze, WindowLimitsSearch) {
  Design d = openField();
  RoutingGrid g(d, nullptr);
  // Block M2 track 2 at column 10 and M3 column 10: with a one-track window
  // there is no way around.
  d.addBlockage(Layer::M2, Rect{Interval{10, 10}, Interval{2, 2}});
  RoutingGrid g2(d, nullptr);
  MazeRouter maze(g2);
  const int s = g2.id(Node{RLayer::M2, 2, 2});
  const int t = g2.id(Node{RLayer::M2, 20, 2});
  const geom::Rect narrow{0, 2, 29, 2};  // single track
  EXPECT_FALSE(maze.findPath({s}, {t}, narrow, 0, {}).has_value());
  EXPECT_TRUE(maze.findPath({s}, {t}, fullWindow(g2), 0, {}).has_value());
}

TEST(Maze, PresentCostAvoidsSharing) {
  Design d = openField();
  RoutingGrid g(d, nullptr);
  // Occupy the direct track between source and target.
  for (geom::Coord x = 3; x <= 17; ++x)
    g.addOcc(g.id(Node{RLayer::M2, x, 2}));
  MazeRouter maze(g);
  MazeCosts costs;
  costs.present = 50.0F;
  const int s = g.id(Node{RLayer::M2, 2, 2});
  const int t = g.id(Node{RLayer::M2, 18, 2});
  const auto path = maze.findPath({s}, {t}, fullWindow(g), 0, costs);
  ASSERT_TRUE(path.has_value());
  int shared = 0;
  for (int id : *path) shared += g.occupancy(id) > 0 ? 1 : 0;
  EXPECT_EQ(shared, 0);  // detour around the congestion
}

TEST(Maze, ForbiddenViaCostSteersViaPlacement) {
  Design d = openField();
  RoutingGrid g(d, nullptr);
  // Another net's via sits where the cheapest via would otherwise drop.
  g.addVia(5, 2, /*net=*/1);
  MazeRouter maze(g);
  const int s = g.id(Node{RLayer::M2, 5, 2});
  const int t = g.id(Node{RLayer::M2, 5, 8});
  const auto path = maze.findPath({s}, {t}, fullWindow(g), 0, {});
  ASSERT_TRUE(path.has_value());
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    const Node u = g.node((*path)[i]);
    const Node v = g.node((*path)[i + 1]);
    if (u.layer != v.layer) {
      // The chosen via sites must not be adjacent to net 1's via.
      EXPECT_FALSE(g.viaForbidden(u.x, u.y, 0))
          << "via at " << u.x << "," << u.y;
    }
  }
}

}  // namespace
}  // namespace cpr::route
