/// Negotiation-router behaviour that PR-level refactors must not drift:
/// thread-count invariance of the wave-parallel search/commit split, the
/// RRR stall detector's material-progress semantics, deadline handling, and
/// the batch counters.
#include <gtest/gtest.h>

#include <cstdint>

#include "gen/generator.h"
#include "obs/names.h"
#include "route/cpr.h"
#include "route/negotiation_router.h"
#include "support/deadline.h"

namespace cpr::route {
namespace {

db::Design mediumDesign(std::uint64_t seed = 3) {
  gen::GenOptions o;
  o.seed = seed;
  o.width = 160;
  o.numRows = 6;
  o.pinDensity = 0.2;
  o.minPinsPerNet = 2;
  o.maxPinsPerNet = 4;
  o.minPinTracks = 2;
  o.maxPinTracks = 4;
  o.maxNetSpan = 40;
  o.m3Pitch = 3;
  o.blockagesPerRow = 4;
  return gen::generate(o);
}

/// FNV-1a over every net's outcome and full committed geometry. Any
/// divergence in what was routed or where it landed moves this digest.
std::uint64_t routeDigest(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFFU;
      h *= 1099511628211ULL;
    }
  };
  for (const NetResult& nr : r.nets) {
    mix(static_cast<std::uint64_t>(nr.routed) |
        (static_cast<std::uint64_t>(nr.clean) << 1));
    mix(static_cast<std::uint64_t>(nr.wirelength));
    mix(static_cast<std::uint64_t>(nr.vias));
  }
  for (const NetGeometry& g : r.geometry) {
    for (const RouteSegment& s : g.segments) {
      mix(static_cast<std::uint64_t>(s.m3));
      mix(static_cast<std::uint64_t>(s.lane));
      mix(static_cast<std::uint64_t>(s.span.lo));
      mix(static_cast<std::uint64_t>(s.span.hi));
    }
    for (const NetGeometry::Via& v : g.vias) {
      mix(static_cast<std::uint64_t>(v.x));
      mix(static_cast<std::uint64_t>(v.y));
      mix(v.level);
    }
  }
  return h;
}

std::uint64_t digestAt(const db::Design& d, const core::PinAccessPlan* plan,
                       int threads) {
  NegotiationOptions opts;
  opts.keepGeometry = true;
  opts.threads = threads;
  return routeDigest(routeNegotiated(d, plan, opts));
}

TEST(Negotiation, RouteDigestIsThreadCountInvariantWithoutPlan) {
  const db::Design d = mediumDesign();
  const std::uint64_t d1 = digestAt(d, nullptr, 1);
  EXPECT_EQ(d1, digestAt(d, nullptr, 2));
  EXPECT_EQ(d1, digestAt(d, nullptr, 8));
}

TEST(Negotiation, RouteDigestIsThreadCountInvariantWithPlan) {
  const db::Design d = mediumDesign(5);
  CprOptions copts;
  const core::PinAccessPlan plan = core::optimizePinAccess(d, copts.pinAccess);
  const std::uint64_t d1 = digestAt(d, &plan, 1);
  EXPECT_EQ(d1, digestAt(d, &plan, 2));
  EXPECT_EQ(d1, digestAt(d, &plan, 8));
}

TEST(Negotiation, BatchCountersAreEmitted) {
  const db::Design d = mediumDesign();
  NegotiationOptions opts;
  opts.threads = 2;
  const RoutingResult r = routeNegotiated(d, nullptr, opts);
  // The independent stage alone launches at least one wave, and on a
  // multi-row design some nets are box-disjoint and ride the same wave.
  EXPECT_GE(r.stats.counter(obs::names::kRouteBatches), 1);
  EXPECT_GE(r.stats.counter(obs::names::kRouteParallelNets), 2);
  EXPECT_EQ(r.stats.counter(obs::names::kRouteTimeout), 0);
}

TEST(Negotiation, ExpiredDeadlineCutsStagesButNeverHalfRoutesNets) {
  const db::Design d = mediumDesign();
  NegotiationOptions opts;
  opts.deadline = support::Deadline::after(0.0);
  const RoutingResult r = routeNegotiated(d, nullptr, opts);
  // Every stage (independent waves, RRR, DRC repair) was cut short.
  EXPECT_GE(r.stats.counter(obs::names::kRouteTimeout), 1);
  ASSERT_EQ(r.nets.size(), d.nets().size());
  for (const NetResult& nr : r.nets) {
    if (nr.routed) {
      EXPECT_GE(nr.vias, 2);  // fully hooked up, never half-routed
    } else {
      EXPECT_EQ(nr.vias, 0);
      EXPECT_EQ(nr.wirelength, 0);
    }
  }
}

// ---- RrrStallDetector (the PR-7 stall-measurement fix) ----

TEST(RrrStallDetector, SlowDripStillTriggersStallExit) {
  // Sub-0.5%-per-iteration decline from 1000: each step is far below the
  // 2% material threshold, so the default budget of 4 exhausts.
  RrrStallDetector det(1000, 4);
  EXPECT_FALSE(det.shouldStop(999));
  EXPECT_FALSE(det.shouldStop(998));
  EXPECT_FALSE(det.shouldStop(997));
  EXPECT_TRUE(det.shouldStop(996));
  EXPECT_EQ(det.baseline(), 1000);  // never tightened by sub-material steps
}

TEST(RrrStallDetector, SteadyMaterialRateProgressIsNotCutOff) {
  // 1% per iteration: no single step is material, but against a baseline
  // that only moves on material improvement the steps accumulate and re-arm
  // the detector. The pre-fix behaviour (baseline = min so far) measured
  // each step against the previous value and cut this run off mid-progress.
  RrrStallDetector det(1000, 4);
  long congestion = 1000;
  for (int iter = 0; iter < 30; ++iter) {
    congestion -= 10;
    EXPECT_FALSE(det.shouldStop(congestion)) << "iteration " << iter;
  }
  EXPECT_LT(det.baseline(), 1000);  // material progress was registered
}

TEST(RrrStallDetector, MaterialImprovementResetsTheBudget) {
  RrrStallDetector det(1000, 2);
  EXPECT_FALSE(det.shouldStop(995));  // stall 1 of 2
  EXPECT_FALSE(det.shouldStop(950));  // 5%: material, budget re-armed
  EXPECT_EQ(det.baseline(), 950);
  EXPECT_FALSE(det.shouldStop(949));  // stall 1 of 2
  EXPECT_TRUE(det.shouldStop(948));   // stall 2 of 2
}

TEST(RrrStallDetector, ZeroBudgetDisablesTheDetector) {
  RrrStallDetector det(100, 0);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(det.shouldStop(100));
}

}  // namespace
}  // namespace cpr::route
