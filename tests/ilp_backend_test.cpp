/// Golden LP suite for the `LpBackend` seam (ilp/lp_backend.h): both
/// registered engines — the dense two-phase reference and the revised
/// simplex — must agree on status and objective across known-optimum,
/// infeasible, degenerate, and randomly generated relaxations, with and
/// without branch & bound fixings; and warm-started re-solves must match
/// cold solves exactly while doing no more pivot work.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "ilp/branch_and_bound.h"
#include "ilp/lp_backend.h"
#include "ilp/model.h"

namespace cpr::ilp {
namespace {

LpResult run(const Model& m, const std::string& backend,
             const Fixing* fix = nullptr) {
  const std::unique_ptr<LpBackend> be = makeLpBackend(backend);
  be->bind(m, LpOptions{});
  return be->solve(fix);
}

TEST(LpBackendFactory, RegistersBothEnginesAndRejectsUnknownNames) {
  EXPECT_EQ(makeLpBackend("revised")->name(), "revised");
  EXPECT_EQ(makeLpBackend("dense")->name(), "dense");
  EXPECT_THROW((void)makeLpBackend("cplex"), std::invalid_argument);
  const auto& names = lpBackendNames();
  ASSERT_EQ(names.size(), 2u);
  // The preference order's head is the LpOptions default: the engine every
  // caller gets unless it asks for another by name.
  EXPECT_EQ(LpOptions{}.backend, names.front());
}

// ------------------------------------------------- golden suite ---------

class GoldenSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenSuite, UnconstrainedBinariesSaturate) {
  Model m;
  m.addBinary(3.0);
  m.addBinary(-2.0);
  const LpResult r = run(m, GetParam());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
  EXPECT_NEAR(r.x[0], 1.0, 1e-7);
  EXPECT_NEAR(r.x[1], 0.0, 1e-7);
}

TEST_P(GoldenSuite, KnapsackRelaxationIsFractional) {
  // max 3a + 2b st 2a + 2b <= 3, 0<=x<=1 → a=1, b=0.5, obj 4.
  Model m;
  const Index a = m.addBinary(3.0);
  const Index b = m.addBinary(2.0);
  m.addConstraint({{a, 2.0}, {b, 2.0}}, Sense::LessEqual, 3.0);
  const LpResult r = run(m, GetParam());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
  EXPECT_NEAR(r.x[a], 1.0, 1e-7);
  EXPECT_NEAR(r.x[b], 0.5, 1e-7);
}

TEST_P(GoldenSuite, MixedSenseRows) {
  // max a + 4b - c st a + b = 1, b + c >= 1 → b=1, c=0, obj 4.
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(4.0);
  const Index c = m.addBinary(-1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{b, 1.0}, {c, 1.0}}, Sense::GreaterEqual, 1.0);
  const LpResult r = run(m, GetParam());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
  EXPECT_NEAR(r.x[b], 1.0, 1e-7);
}

TEST_P(GoldenSuite, SetPartitioningRelaxationIsTight) {
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(1.0);
  const Index c = m.addBinary(1.5);
  m.addConstraint({{a, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{b, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::LessEqual, 1.0);
  const LpResult r = run(m, GetParam());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[c], 1.0, 1e-7);
  EXPECT_NEAR(r.objective, 1.5, 1e-7);
}

TEST_P(GoldenSuite, DegenerateTiesStillTerminate) {
  // Every pair conflicts and one partition row pins the sum: masses of
  // zero-length (degenerate) pivots; Bland's fallback must still land on
  // the unique optimum value 2.0 (pick the weight-2 variable).
  Model m;
  std::vector<Index> v;
  for (int i = 0; i < 6; ++i) v.push_back(m.addBinary(i == 3 ? 2.0 : 1.0));
  for (std::size_t i = 0; i < v.size(); ++i)
    for (std::size_t j = i + 1; j < v.size(); ++j)
      m.addConstraint({{v[i], 1.0}, {v[j], 1.0}}, Sense::LessEqual, 1.0);
  std::vector<Term> all;
  for (const Index x : v) all.push_back({x, 1.0});
  m.addConstraint(std::move(all), Sense::Equal, 1.0);
  const LpResult r = run(m, GetParam());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST_P(GoldenSuite, DetectsInfeasibility) {
  Model m;
  const Index a = m.addBinary(1.0);
  m.addConstraint({{a, 1.0}}, Sense::GreaterEqual, 2.0);  // a <= 1 < 2
  EXPECT_EQ(run(m, GetParam()).status, LpStatus::Infeasible);
}

TEST_P(GoldenSuite, ConflictingEqualitiesInfeasible) {
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 2.0);
  EXPECT_EQ(run(m, GetParam()).status, LpStatus::Infeasible);
}

TEST_P(GoldenSuite, FixingNarrowsTheFeasibleBox) {
  Model m;
  const Index a = m.addBinary(3.0);
  const Index b = m.addBinary(2.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::LessEqual, 1.0);
  Fixing fix(2, -1);
  fix[static_cast<std::size_t>(a)] = 0;
  const LpResult r = run(m, GetParam(), &fix);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[a], 0.0, 1e-7);
  EXPECT_NEAR(r.x[b], 1.0, 1e-7);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST_P(GoldenSuite, FixingCanCreateInfeasibility) {
  Model m;
  m.addBinary(1.0);
  m.addBinary(1.0);
  m.addConstraint({{0, 1.0}, {1, 1.0}}, Sense::LessEqual, 1.0);
  const Fixing fix(2, 1);  // both fixed to 1: 2 <= 1 fails
  EXPECT_EQ(run(m, GetParam(), &fix).status, LpStatus::Infeasible);
}

INSTANTIATE_TEST_SUITE_P(Engines, GoldenSuite,
                         ::testing::Values("dense", "revised"));

// ------------------------------------- cross-engine random sweep --------

class EngineAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineAgreement, StatusAndObjectiveMatchOnRandomModels) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nDist(2, 6);
  std::uniform_int_distribution<int> cDist(-4, 6);
  std::uniform_int_distribution<int> senseDist(0, 5);
  std::uniform_int_distribution<int> fixDist(0, 9);

  for (int round = 0; round < 60; ++round) {
    Model m;
    const int n = nDist(rng);
    for (int v = 0; v < n; ++v) m.addBinary(cDist(rng));
    const int rows = nDist(rng);
    for (int r = 0; r < rows; ++r) {
      std::vector<Term> terms;
      for (Index v = 0; v < n; ++v) {
        const int coef = cDist(rng) % 3;
        if (coef != 0) terms.push_back({v, static_cast<double>(coef)});
      }
      if (terms.empty()) continue;
      // Mostly <=, sometimes = / >= so infeasible instances occur and both
      // engines must classify them identically.
      const int s = senseDist(rng);
      const Sense sense = s == 0   ? Sense::Equal
                          : s == 1 ? Sense::GreaterEqual
                                   : Sense::LessEqual;
      m.addConstraint(std::move(terms), sense,
                      static_cast<double>(cDist(rng) % 3));
    }
    Fixing fix(static_cast<std::size_t>(n), -1);
    bool anyFixed = false;
    for (int v = 0; v < n; ++v) {
      const int roll = fixDist(rng);
      if (roll < 2) {
        fix[static_cast<std::size_t>(v)] = static_cast<std::int8_t>(roll);
        anyFixed = true;
      }
    }
    const Fixing* fp = anyFixed ? &fix : nullptr;
    const LpResult dense = run(m, "dense", fp);
    const LpResult revised = run(m, "revised", fp);
    ASSERT_EQ(dense.status, revised.status)
        << "seed " << GetParam() << " round " << round;
    if (dense.status == LpStatus::Optimal) {
      EXPECT_NEAR(dense.objective, revised.objective, 1e-6)
          << "seed " << GetParam() << " round " << round;
      EXPECT_TRUE(m.feasible(revised.x, 1e-6));
      EXPECT_NEAR(revised.objective, m.evaluate(revised.x), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement,
                         ::testing::Values(101u, 102u, 103u, 104u));

// ------------------------------------------------ warm starting ---------

TEST(LpBackendWarmStart, ChildResolveFromParentBasisMatchesColdSolve) {
  // A branch & bound dive in miniature: solve the root, then fix variables
  // one at a time, re-solving warm from the parent basis each step. Every
  // warm solve must match an independent cold solve of the same node and
  // never do more pivot work.
  Model m;
  const int n = 6;
  for (int v = 0; v < n; ++v) m.addBinary(1.0 + 0.5 * v);
  m.addConstraint({{0, 2.0}, {1, 2.0}, {2, 2.0}}, Sense::LessEqual, 3.0);
  m.addConstraint({{2, 1.0}, {3, 1.0}, {4, 1.0}}, Sense::LessEqual, 2.0);
  m.addConstraint({{1, 1.0}, {4, 1.0}, {5, 1.0}}, Sense::Equal, 1.0);

  const std::unique_ptr<LpBackend> warmEngine = makeLpBackend("revised");
  warmEngine->bind(m, LpOptions{});
  LpBasis parent;
  const LpResult root = warmEngine->solve(nullptr, nullptr, &parent);
  ASSERT_EQ(root.status, LpStatus::Optimal);
  EXPECT_FALSE(root.warmStarted);
  ASSERT_FALSE(parent.empty());

  Fixing fix(static_cast<std::size_t>(n), -1);
  const std::int8_t dive[n] = {1, 0, -1, 1, -1, 0};
  for (int v = 0; v < n; ++v) {
    if (dive[v] < 0) continue;
    fix[static_cast<std::size_t>(v)] = dive[v];
    LpBasis child;
    const LpResult warm = warmEngine->solve(&fix, &parent, &child);
    const LpResult cold = run(m, "revised", &fix);
    ASSERT_EQ(warm.status, cold.status) << "fixing var " << v;
    if (warm.status != LpStatus::Optimal) break;
    EXPECT_TRUE(warm.warmStarted) << "fixing var " << v;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-7) << "fixing var " << v;
    EXPECT_LE(warm.pivots, cold.pivots) << "fixing var " << v;
    parent = child;
  }
}

TEST(LpBackendWarmStart, BnbWarmStartMatchesColdSearchAndSavesPivots) {
  // max over a knapsack with conflict rows: fractional at the root, so the
  // search branches. Warm and cold searches must agree exactly on the
  // optimum; warm must engage (warmSolves > 0) and do no more total pivots.
  // Even weights against an odd capacity keep the relaxation fractional at
  // every dive level, forcing a real search tree.
  Model m;
  const int n = 8;
  for (int v = 0; v < n; ++v) m.addBinary(1.0 + 0.01 * v);
  std::vector<Term> knap;
  for (Index v = 0; v < n; ++v) knap.push_back({v, 2.0});
  m.addConstraint(std::move(knap), Sense::LessEqual, 7.0);
  m.addConstraint({{0, 1.0}, {3, 1.0}}, Sense::LessEqual, 1.0);
  m.addConstraint({{1, 1.0}, {4, 1.0}, {7, 1.0}}, Sense::LessEqual, 1.0);

  IlpOptions warmOpts;
  warmOpts.lp.backend = "revised";
  IlpOptions coldOpts = warmOpts;
  coldOpts.lp.warmStart = false;

  const IlpResult warm = solveBinaryIlp(m, warmOpts);
  const IlpResult cold = solveBinaryIlp(m, coldOpts);
  ASSERT_EQ(warm.status, IlpStatus::Optimal);
  ASSERT_EQ(cold.status, IlpStatus::Optimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_EQ(warm.backend, "revised");
  EXPECT_GT(warm.nodesExplored, 1);
  EXPECT_GT(warm.lpWarmSolves, 0);
  EXPECT_EQ(cold.lpWarmSolves, 0);
  EXPECT_GT(cold.lpColdSolves, 0);
  EXPECT_LE(warm.lpPivots, cold.lpPivots);
}

// --------------------------------------- branch & bound per engine ------

class BnbEngines : public ::testing::TestWithParam<const char*> {};

TEST_P(BnbEngines, MatchesBruteForceOnRandomModels) {
  std::mt19937 rng(777u);
  std::uniform_int_distribution<int> nDist(2, 6);
  std::uniform_int_distribution<int> cDist(-4, 6);

  for (int round = 0; round < 25; ++round) {
    Model m;
    const int n = nDist(rng);
    for (int v = 0; v < n; ++v) m.addBinary(cDist(rng));
    const int rows = nDist(rng);
    for (int r = 0; r < rows; ++r) {
      std::vector<Term> terms;
      for (Index v = 0; v < n; ++v) {
        const int coef = cDist(rng) % 3;
        if (coef != 0) terms.push_back({v, static_cast<double>(coef)});
      }
      if (terms.empty()) continue;
      m.addConstraint(std::move(terms), Sense::LessEqual,
                      static_cast<double>(std::abs(cDist(rng))));
    }

    double best = 0.0;  // x = 0 is feasible for these rows
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<double> x(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v)
        x[static_cast<std::size_t>(v)] = (mask >> v) & 1;
      if (m.feasible(x)) best = std::max(best, m.evaluate(x));
    }

    IlpOptions opts;
    opts.lp.backend = GetParam();
    const IlpResult r = solveBinaryIlp(m, opts);
    ASSERT_EQ(r.status, IlpStatus::Optimal) << "round " << round;
    EXPECT_NEAR(r.objective, best, 1e-6) << "round " << round;
    EXPECT_EQ(r.backend, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, BnbEngines,
                         ::testing::Values("dense", "revised"));

}  // namespace
}  // namespace cpr::ilp
