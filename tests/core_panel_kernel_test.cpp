/// \file core_panel_kernel_test.cpp
/// Property tests for the compiled CSR `PanelKernel`: for randomly generated
/// panels the flat view must round-trip every adjacency of the nested
/// `Problem` in the exact same order, the flat `audit` must agree with the
/// nested ground truth, and scratch-arena reuse must not change any solver
/// result.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/conflict.h"
#include "core/interval_gen.h"
#include "core/panel_kernel.h"
#include "core/solver.h"
#include "db/panel.h"
#include "gen/generator.h"

namespace cpr::core {
namespace {

db::Design randomDesign(std::uint64_t seed) {
  gen::GenOptions o;
  o.seed = seed;
  o.width = 90;
  o.numRows = 2;
  o.pinDensity = 0.22;
  o.minPinTracks = 2;
  o.maxPinTracks = 4;
  o.maxNetSpan = 30;
  o.blockagesPerRow = 2;
  return gen::generate(o);
}

Problem panelProblem(const db::Design& d, int panelIdx) {
  Problem p = buildProblem(d, db::extractPanel(d, panelIdx));
  detectConflicts(p);
  return p;
}

template <typename T>
std::vector<T> toVec(std::span<const T> s) {
  return {s.begin(), s.end()};
}

class PanelKernelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PanelKernelProperty, CompileRoundTripsEveryAdjacency) {
  const db::Design d = randomDesign(GetParam());
  for (int panel = 0; panel < 2; ++panel) {
    const Problem p = panelProblem(d, panel);
    const PanelKernel k = PanelKernel::compile(Problem(p));

    ASSERT_EQ(k.numPins(), p.pins.size());
    ASSERT_EQ(k.numIntervals(), p.intervals.size());
    ASSERT_EQ(k.numConflicts(), p.conflicts.size());

    for (std::size_t j = 0; j < p.pins.size(); ++j) {
      const auto jj = static_cast<Index>(j);
      EXPECT_EQ(toVec(k.candidatesOf(jj)), p.pins[j].intervals);
      EXPECT_EQ(k.minimalIntervalOf(jj), p.pins[j].minimalInterval);
      EXPECT_EQ(k.designPinOf(jj), p.pins[j].designPin);
      // The profit-sorted view is a permutation of the candidate set in
      // non-increasing profit order.
      const std::vector<Index> sorted = toVec(k.sortedCandidatesOf(jj));
      ASSERT_EQ(sorted.size(), p.pins[j].intervals.size());
      for (std::size_t u = 1; u < sorted.size(); ++u) {
        EXPECT_GE(k.profitOf(sorted[u - 1]), k.profitOf(sorted[u]));
      }
      std::vector<Index> a = sorted;
      std::vector<Index> b = p.pins[j].intervals;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b);
    }

    for (std::size_t i = 0; i < p.intervals.size(); ++i) {
      const auto ii = static_cast<Index>(i);
      const AccessInterval& iv = p.intervals[i];
      EXPECT_EQ(toVec(k.pinsOf(ii)), iv.pins);
      EXPECT_EQ(k.trackOf(ii), iv.track);
      EXPECT_EQ(k.spanOf(ii).lo, iv.span.lo);
      EXPECT_EQ(k.spanOf(ii).hi, iv.span.hi);
      EXPECT_EQ(k.netOf(ii), iv.net);
      EXPECT_EQ(k.isMinimal(ii), iv.minimal);
      EXPECT_EQ(k.profitOf(ii), p.profit[i]);
      EXPECT_EQ(k.weightOf(ii), p.weight(ii));
      EXPECT_EQ(k.degreeOf(ii), static_cast<Index>(iv.pins.size()));
    }

    // Conflict membership and the interval->conflicts cross-index, which
    // must list each interval's sets in ascending id order (the order the
    // nested csOf construction produced).
    std::vector<std::vector<Index>> csOf(p.intervals.size());
    for (std::size_t m = 0; m < p.conflicts.size(); ++m) {
      const auto mm = static_cast<Index>(m);
      EXPECT_EQ(toVec(k.membersOf(mm)), p.conflicts[m].intervals);
      EXPECT_EQ(k.conflictTrackOf(mm), p.conflicts[m].track);
      EXPECT_EQ(k.conflictSpanOf(mm), p.conflicts[m].common.span());
      for (const Index i : p.conflicts[m].intervals)
        csOf[static_cast<std::size_t>(i)].push_back(mm);
    }
    for (std::size_t i = 0; i < p.intervals.size(); ++i)
      EXPECT_EQ(toVec(k.conflictsOf(static_cast<Index>(i))), csOf[i]);

    EXPECT_GT(k.footprintBytes(), 0u);
  }
}

TEST_P(PanelKernelProperty, FlatAuditMatchesNestedAudit) {
  const db::Design d = randomDesign(GetParam());
  const Problem p = panelProblem(d, 0);
  const PanelKernel k = PanelKernel::compile(Problem(p));

  // Audit both a legal assignment and randomly perturbed (possibly illegal,
  // possibly partial) ones: the flat audit must agree on all of them.
  std::mt19937_64 rng(GetParam() * 7919 + 1);
  Assignment a = solveLr(k);
  for (int round = 0; round < 6; ++round) {
    const AssignmentAudit nested = audit(p, a);
    const AssignmentAudit flat = audit(k, a);
    EXPECT_EQ(flat.objective, nested.objective);
    EXPECT_EQ(flat.unassignedPins, nested.unassignedPins);
    EXPECT_EQ(flat.overlapsBetweenNets, nested.overlapsBetweenNets);
    EXPECT_EQ(flat.eachPinCovered, nested.eachPinCovered);

    if (a.intervalOfPin.empty()) break;
    const std::size_t j = rng() % a.intervalOfPin.size();
    const auto jj = static_cast<Index>(j);
    if (rng() % 3 == 0) {
      a.intervalOfPin[j] = geom::kInvalidIndex;
    } else if (!k.candidatesOf(jj).empty()) {
      const std::span<const Index> cand = k.candidatesOf(jj);
      a.intervalOfPin[j] = cand[rng() % cand.size()];
    }
  }
}

TEST_P(PanelKernelProperty, ScratchReuseDoesNotChangeResults) {
  const db::Design d = randomDesign(GetParam());
  // One arena reused across panels of different sizes must reproduce the
  // scratch-free results bit for bit, for both solvers behind the interface.
  PanelScratch arena;
  for (int panel = 0; panel < 2; ++panel) {
    const Problem p = panelProblem(d, panel);
    const PanelKernel k = PanelKernel::compile(Problem(p));
    for (const auto& solver :
         {std::unique_ptr<Solver>(std::make_unique<LrSolver>()),
          std::unique_ptr<Solver>(std::make_unique<ExactSolver>())}) {
      // Each solve gets its own relative budget: a shared absolute deadline
      // could fire between the two calls and break bit-identity.
      const Assignment fresh = solver->solve(k, nullptr, nullptr,
                                             support::Deadline::after(10.0));
      const Assignment reused = solver->solve(k, &arena, nullptr,
                                              support::Deadline::after(10.0));
      EXPECT_EQ(fresh.intervalOfPin, reused.intervalOfPin) << solver->name();
      EXPECT_EQ(fresh.objective, reused.objective) << solver->name();
      EXPECT_EQ(fresh.violations, reused.violations) << solver->name();
      EXPECT_EQ(fresh.provedOptimal, reused.provedOptimal) << solver->name();
    }
    EXPECT_GT(arena.footprintBytes(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PanelKernelProperty,
                         ::testing::Range<std::uint64_t>(300, 310));

}  // namespace
}  // namespace cpr::core
