/// \file core_panel_kernel_test.cpp
/// Property tests for the compiled CSR `PanelKernel`: for randomly generated
/// panels the flat view must round-trip every adjacency of the nested
/// `Problem` in the exact same order, the flat `audit` must agree with the
/// nested ground truth, and scratch-arena reuse must not change any solver
/// result. Boundary tests pin down `rowSpan` behavior at the edges of the
/// offset arrays (last row, empty panel, single-candidate panel).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/conflict.h"
#include "core/interval_gen.h"
#include "core/panel_kernel.h"
#include "core/solver.h"
#include "db/panel.h"
#include "gen/generator.h"

namespace cpr::core {
namespace {

db::Design randomDesign(std::uint64_t seed) {
  gen::GenOptions o;
  o.seed = seed;
  o.width = 90;
  o.numRows = 2;
  o.pinDensity = 0.22;
  o.minPinTracks = 2;
  o.maxPinTracks = 4;
  o.maxNetSpan = 30;
  o.blockagesPerRow = 2;
  return gen::generate(o);
}

Problem panelProblem(const db::Design& d, int panelIdx) {
  Problem p = buildProblem(d, db::extractPanel(d, panelIdx));
  detectConflicts(p);
  return p;
}

/// Unwraps a strong-id span back to the raw ids of the nested `Problem`.
template <typename T>
std::vector<Index> toRaw(std::span<const T> s) {
  std::vector<Index> out;
  out.reserve(s.size());
  for (const T v : s) out.push_back(v.value());
  return out;
}

class PanelKernelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PanelKernelProperty, CompileRoundTripsEveryAdjacency) {
  const db::Design d = randomDesign(GetParam());
  for (int panel = 0; panel < 2; ++panel) {
    const Problem p = panelProblem(d, panel);
    const PanelKernel k = PanelKernel::compile(Problem(p));

    ASSERT_EQ(k.numPins(), p.pins.size());
    ASSERT_EQ(k.numIntervals(), p.intervals.size());
    ASSERT_EQ(k.numConflicts(), p.conflicts.size());

    for (std::size_t j = 0; j < p.pins.size(); ++j) {
      const PinIdx jj{j};
      EXPECT_EQ(toRaw(k.candidatesOf(jj)), p.pins[j].intervals);
      EXPECT_EQ(k.minimalIntervalOf(jj).value(), p.pins[j].minimalInterval);
      EXPECT_EQ(k.designPinOf(jj), p.pins[j].designPin);
      // The profit-sorted view is a permutation of the candidate set in
      // non-increasing profit order.
      const std::vector<Index> sorted = toRaw(k.sortedCandidatesOf(jj));
      ASSERT_EQ(sorted.size(), p.pins[j].intervals.size());
      for (std::size_t u = 1; u < sorted.size(); ++u) {
        EXPECT_GE(k.profitOf(CandIdx{sorted[u - 1]}),
                  k.profitOf(CandIdx{sorted[u]}));
      }
      std::vector<Index> a = sorted;
      std::vector<Index> b = p.pins[j].intervals;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b);
    }

    for (std::size_t i = 0; i < p.intervals.size(); ++i) {
      const CandIdx ii{i};
      const AccessInterval& iv = p.intervals[i];
      EXPECT_EQ(toRaw(k.pinsOf(ii)), iv.pins);
      EXPECT_EQ(k.trackOf(ii), iv.track);
      EXPECT_EQ(k.spanOf(ii).lo, iv.span.lo);
      EXPECT_EQ(k.spanOf(ii).hi, iv.span.hi);
      EXPECT_EQ(k.netOf(ii), iv.net);
      EXPECT_EQ(k.isMinimal(ii), iv.minimal);
      EXPECT_EQ(k.profitOf(ii), p.profit[i]);
      EXPECT_EQ(k.weightOf(ii), p.weight(ii.value()));
      EXPECT_EQ(k.degreeOf(ii), static_cast<Index>(iv.pins.size()));
    }

    // Conflict membership and the interval->conflicts cross-index, which
    // must list each interval's sets in ascending id order (the order the
    // nested csOf construction produced).
    std::vector<std::vector<Index>> csOf(p.intervals.size());
    for (std::size_t m = 0; m < p.conflicts.size(); ++m) {
      const ConflictIdx mm{m};
      EXPECT_EQ(toRaw(k.membersOf(mm)), p.conflicts[m].intervals);
      EXPECT_EQ(k.conflictTrackOf(mm), p.conflicts[m].track);
      EXPECT_EQ(k.conflictSpanOf(mm), p.conflicts[m].common.span());
      for (const Index i : p.conflicts[m].intervals)
        csOf[CandIdx{i}.idx()].push_back(mm.value());
    }
    for (std::size_t i = 0; i < p.intervals.size(); ++i)
      EXPECT_EQ(toRaw(k.conflictsOf(CandIdx{i})), csOf[i]);

    EXPECT_GT(k.footprintBytes(), 0u);
  }
}

TEST_P(PanelKernelProperty, FlatAuditMatchesNestedAudit) {
  const db::Design d = randomDesign(GetParam());
  const Problem p = panelProblem(d, 0);
  const PanelKernel k = PanelKernel::compile(Problem(p));

  // Audit both a legal assignment and randomly perturbed (possibly illegal,
  // possibly partial) ones: the flat audit must agree on all of them.
  std::mt19937_64 rng(GetParam() * 7919 + 1);
  Assignment a = solveLr(k);
  for (int round = 0; round < 6; ++round) {
    const AssignmentAudit nested = audit(p, a);
    const AssignmentAudit flat = audit(k, a);
    EXPECT_EQ(flat.objective, nested.objective);
    EXPECT_EQ(flat.unassignedPins, nested.unassignedPins);
    EXPECT_EQ(flat.overlapsBetweenNets, nested.overlapsBetweenNets);
    EXPECT_EQ(flat.eachPinCovered, nested.eachPinCovered);

    if (a.intervalOfPin.empty()) break;
    const std::size_t j = rng() % a.intervalOfPin.size();
    const PinIdx jj{j};
    if (rng() % 3 == 0) {
      a.intervalOfPin[j] = geom::kInvalidIndex;
    } else if (!k.candidatesOf(jj).empty()) {
      const std::span<const CandIdx> cand = k.candidatesOf(jj);
      a.intervalOfPin[j] = cand[rng() % cand.size()].value();
    }
  }
}

TEST_P(PanelKernelProperty, ScratchReuseDoesNotChangeResults) {
  const db::Design d = randomDesign(GetParam());
  // One arena reused across panels of different sizes must reproduce the
  // scratch-free results bit for bit, for both solvers behind the interface.
  PanelScratch arena;
  for (int panel = 0; panel < 2; ++panel) {
    const Problem p = panelProblem(d, panel);
    const PanelKernel k = PanelKernel::compile(Problem(p));
    for (const auto& solver :
         {std::unique_ptr<Solver>(std::make_unique<LrSolver>()),
          std::unique_ptr<Solver>(std::make_unique<ExactSolver>())}) {
      // Each solve gets its own relative budget: a shared absolute deadline
      // could fire between the two calls and break bit-identity.
      const Assignment fresh = solver->solve(k, nullptr, nullptr,
                                             support::Deadline::after(10.0));
      const Assignment reused = solver->solve(k, &arena, nullptr,
                                              support::Deadline::after(10.0));
      EXPECT_EQ(fresh.intervalOfPin, reused.intervalOfPin) << solver->name();
      EXPECT_EQ(fresh.objective, reused.objective) << solver->name();
      EXPECT_EQ(fresh.violations, reused.violations) << solver->name();
      EXPECT_EQ(fresh.provedOptimal, reused.provedOptimal) << solver->name();
    }
    EXPECT_GT(arena.footprintBytes(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PanelKernelProperty,
                         ::testing::Range<std::uint64_t>(300, 310));

// ---- rowSpan boundary behavior -------------------------------------------

TEST(PanelKernelBoundary, EmptyPanelCompilesToEmptyKernel) {
  const PanelKernel k = PanelKernel::compile(Problem{});
  EXPECT_EQ(k.numPins(), 0u);
  EXPECT_EQ(k.numIntervals(), 0u);
  EXPECT_EQ(k.numConflicts(), 0u);
  // The offset arrays still exist (one sentinel row), so the footprint is
  // small but non-zero and no accessor can be legally called.
  EXPECT_GT(k.footprintBytes(), 0u);
}

TEST(PanelKernelBoundary, SingleCandidatePanelRoundTrips) {
  // Smallest non-trivial instance: one pin, one candidate interval that is
  // also the pin's minimum interval, no conflicts.
  Problem p;
  AccessInterval iv;
  iv.track = 3;
  iv.span = geom::Interval{5, 7};
  iv.conflictSpan = iv.span;
  iv.net = 0;
  iv.minimal = true;
  iv.pins = {0};
  p.intervals.push_back(iv);
  ProblemPin pin;
  pin.designPin = 42;
  pin.net = 0;
  pin.intervals = {0};
  pin.minimalInterval = 0;
  p.pins.push_back(pin);
  p.profit = {1.5};

  const PanelKernel k = PanelKernel::compile(std::move(p));
  ASSERT_EQ(k.numPins(), 1u);
  ASSERT_EQ(k.numIntervals(), 1u);
  const PinIdx j{std::size_t{0}};
  ASSERT_EQ(k.candidatesOf(j).size(), 1u);
  EXPECT_EQ(k.candidatesOf(j).front(), CandIdx{0});
  ASSERT_EQ(k.sortedCandidatesOf(j).size(), 1u);
  EXPECT_EQ(k.minimalIntervalOf(j), CandIdx{0});
  const CandIdx i{0};
  ASSERT_EQ(k.pinsOf(i).size(), 1u);
  EXPECT_EQ(k.pinsOf(i).front(), j);
  EXPECT_TRUE(k.conflictsOf(i).empty());
  EXPECT_EQ(k.degreeOf(i), 1);
  EXPECT_TRUE(k.isMinimal(i));
  EXPECT_EQ(k.designPinOf(j), 42);
}

TEST(PanelKernelBoundary, LastRowSpanEndsExactlyAtDataEnd) {
  // `rowSpan` at k == numPins()-1 reads off[n-1]..off[n], the final offset
  // pair; its end iterator must land exactly on the end of the flat data.
  const db::Design d = randomDesign(1234);
  const Problem p = panelProblem(d, 0);
  const PanelKernel k = PanelKernel::compile(Problem(p));
  ASSERT_GT(k.numPins(), 0u);
  ASSERT_GT(k.numIntervals(), 0u);
  ASSERT_GT(k.numConflicts(), 0u);

  std::size_t totalCands = 0;
  for (std::size_t j = 0; j < k.numPins(); ++j)
    totalCands += k.candidatesOf(PinIdx{j}).size();
  std::size_t nestedCands = 0;
  for (const ProblemPin& pin : p.pins) nestedCands += pin.intervals.size();
  EXPECT_EQ(totalCands, nestedCands);

  // The last row of each CSR adjacency matches its nested counterpart.
  const std::size_t lastPin = k.numPins() - 1;
  EXPECT_EQ(toRaw(k.candidatesOf(PinIdx{lastPin})),
            p.pins[lastPin].intervals);
  const std::size_t lastIv = k.numIntervals() - 1;
  EXPECT_EQ(toRaw(k.pinsOf(CandIdx{lastIv})), p.intervals[lastIv].pins);
  const std::size_t lastCs = k.numConflicts() - 1;
  EXPECT_EQ(toRaw(k.membersOf(ConflictIdx{lastCs})),
            p.conflicts[lastCs].intervals);

  // A span ending at the data end stays valid after copying the kernel's
  // spans around (spans are views into the kernel's own storage).
  const std::span<const CandIdx> tail = k.candidatesOf(PinIdx{lastPin});
  if (!tail.empty()) {
    EXPECT_LT(tail.back().idx(), k.numIntervals());
  }
}

TEST(PanelKernelBoundary, StrongIdSentinelRoundTrips) {
  // Default-constructed ids are the sentinel and never index anything.
  EXPECT_FALSE(CandIdx{}.valid());
  EXPECT_FALSE(PinIdx::invalid().valid());
  EXPECT_EQ(ConflictIdx::invalid().value(), geom::kInvalidIndex);
  EXPECT_TRUE(CandIdx{0}.valid());
  // Raw round-trip at the Problem/Assignment boundary.
  const CandIdx i{7};
  EXPECT_EQ(i.value(), 7);
  EXPECT_EQ(i.idx(), 7u);
  EXPECT_EQ(CandIdx{i.value()}, i);
  // Ordering matches the raw ids (sort keys, dedup, CSR rows rely on it).
  EXPECT_LT(CandIdx{3}, CandIdx{4});
  EXPECT_EQ(TrackIdx{std::size_t{9}}.idx(), 9u);
}

}  // namespace
}  // namespace cpr::core
