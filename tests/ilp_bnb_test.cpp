#include <gtest/gtest.h>

#include <random>

#include "ilp/branch_and_bound.h"

namespace cpr::ilp {
namespace {

/// Exhaustive reference solver for tiny binary ILPs.
double bruteForceOpt(const Model& m, bool* feasible) {
  const int n = m.numVars();
  double best = 0.0;
  *feasible = false;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) x[static_cast<std::size_t>(v)] = (mask >> v) & 1;
    if (!m.feasible(x)) continue;
    const double obj = m.evaluate(x);
    if (!*feasible || obj > best) best = obj;
    *feasible = true;
  }
  return best;
}

TEST(BranchAndBound, SolvesKnapsack) {
  // max 10a + 6b + 4c st 5a + 4b + 3c <= 8 → {a,c}: 14.
  Model m;
  const Index a = m.addBinary(10.0);
  const Index b = m.addBinary(6.0);
  const Index c = m.addBinary(4.0);
  m.addConstraint({{a, 5.0}, {b, 4.0}, {c, 3.0}}, Sense::LessEqual, 8.0);
  const IlpResult r = solveBinaryIlp(m);
  ASSERT_EQ(r.status, IlpStatus::Optimal);
  EXPECT_NEAR(r.objective, 14.0, 1e-7);
  EXPECT_NEAR(r.x[a], 1.0, 1e-9);
  EXPECT_NEAR(r.x[b], 0.0, 1e-9);
  EXPECT_NEAR(r.x[c], 1.0, 1e-9);
}

TEST(BranchAndBound, SolvesAssignmentWithEqualities) {
  // Two pins, three intervals; shared interval c worth selecting once.
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(1.0);
  const Index c = m.addBinary(2.2);  // covers both pins
  m.addConstraint({{a, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{b, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
  const IlpResult r = solveBinaryIlp(m);
  ASSERT_EQ(r.status, IlpStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.2, 1e-7);
  EXPECT_NEAR(r.x[c], 1.0, 1e-9);
}

TEST(BranchAndBound, DetectsInfeasible) {
  Model m;
  const Index a = m.addBinary(1.0);
  const Index b = m.addBinary(1.0);
  m.addConstraint({{a, 1.0}, {b, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{a, 1.0}}, Sense::Equal, 1.0);
  m.addConstraint({{b, 1.0}}, Sense::Equal, 1.0);
  EXPECT_EQ(solveBinaryIlp(m).status, IlpStatus::Infeasible);
}

TEST(BranchAndBound, HonorsNodeLimit) {
  Model m;
  for (int i = 0; i < 12; ++i) m.addBinary(1.0 + 0.01 * i);
  // Parity-ish coupling to make the LP fractional everywhere.
  for (int i = 0; i + 1 < 12; ++i) {
    m.addConstraint({{i, 2.0}, {i + 1, 2.0}}, Sense::LessEqual, 3.0);
  }
  IlpOptions opts;
  opts.maxNodes = 3;
  const IlpResult r = solveBinaryIlp(m, opts);
  EXPECT_EQ(r.status, IlpStatus::NodeLimit);
  EXPECT_LE(r.nodesExplored, 3);
}

/// Property test: B&B equals brute force on random tiny ILPs, including
/// infeasible ones.
class BnbProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BnbProperty, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nDist(2, 7);
  std::uniform_int_distribution<int> cDist(-5, 8);
  std::uniform_int_distribution<int> rhsDist(0, 3);
  std::uniform_int_distribution<int> senseDist(0, 4);

  for (int round = 0; round < 60; ++round) {
    Model m;
    const int n = nDist(rng);
    for (int v = 0; v < n; ++v) m.addBinary(cDist(rng));
    const int rows = nDist(rng);
    for (int r = 0; r < rows; ++r) {
      std::vector<Term> terms;
      for (Index v = 0; v < n; ++v) {
        if (cDist(rng) > 2) terms.push_back({v, 1.0});
      }
      if (terms.empty()) continue;
      const int s = senseDist(rng);
      if (s == 0) {
        m.addConstraint(std::move(terms), Sense::Equal, 1.0);
      } else {
        m.addConstraint(std::move(terms), Sense::LessEqual,
                        static_cast<double>(rhsDist(rng)));
      }
    }
    bool feasible = false;
    const double ref = bruteForceOpt(m, &feasible);
    const IlpResult r = solveBinaryIlp(m);
    if (!feasible) {
      EXPECT_EQ(r.status, IlpStatus::Infeasible) << "round " << round;
    } else {
      ASSERT_EQ(r.status, IlpStatus::Optimal) << "round " << round;
      EXPECT_NEAR(r.objective, ref, 1e-6) << "round " << round;
      EXPECT_TRUE(m.feasible(r.x));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

}  // namespace
}  // namespace cpr::ilp
