#include <gtest/gtest.h>

#include <memory>

#include "core/conflict.h"
#include "core/exact_solver.h"
#include "core/interval_gen.h"
#include "core/lr_solver.h"
#include "core/optimizer.h"
#include "db/panel.h"
#include "gen/generator.h"
#include "obs/names.h"

namespace cpr::core {
namespace {

Problem makeProblem(std::uint64_t seed = 17) {
  gen::GenOptions o;
  o.seed = seed;
  o.width = 100;
  o.numRows = 2;
  o.pinDensity = 0.2;
  o.maxNetSpan = 30;
  const db::Design d = gen::generate(o);
  Problem p =
      buildProblem(d, std::vector<db::Panel>(db::extractPanels(d)), {});
  detectConflicts(p);
  return p;
}

void expectSameAssignment(const Assignment& a, const Assignment& b) {
  ASSERT_EQ(a.intervalOfPin.size(), b.intervalOfPin.size());
  for (std::size_t j = 0; j < a.intervalOfPin.size(); ++j)
    EXPECT_EQ(a.intervalOfPin[j], b.intervalOfPin[j]) << "pin " << j;
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(SolverInterface, LrMatchesFreeFunction) {
  const Problem p = makeProblem();
  const Assignment direct = solveLr(p);
  const Assignment viaIface = LrSolver{{}}.solve(p);
  expectSameAssignment(direct, viaIface);
}

TEST(SolverInterface, ExactMatchesFreeFunction) {
  const Problem p = makeProblem(19);
  ExactOptions eo;
  eo.deadline = support::Deadline::after(10.0);
  const Assignment direct = solveExact(p, eo);
  const Assignment viaIface = ExactSolver{eo}.solve(p);
  expectSameAssignment(direct, viaIface);
  EXPECT_TRUE(viaIface.provedOptimal);
}

TEST(SolverInterface, NamesAndFactory) {
  EXPECT_EQ(LrSolver{}.name(), "lr");
  EXPECT_EQ(ExactSolver{}.name(), "exact");
  EXPECT_EQ(IlpSolver{}.name(), "ilp");
  EXPECT_EQ(makeSolver({.method = Method::Lr})->name(), "lr");
  EXPECT_EQ(makeSolver({.method = Method::Exact})->name(), "exact");
  EXPECT_EQ(makeSolver({.method = Method::Ilp})->name(), "ilp");
}

TEST(SolverInterface, AllThreeSolversAgreeOnObjective) {
  // Small instance so the generic ILP path stays fast; exact and ilp are
  // both optimal, LR is a lower bound on them.
  gen::GenOptions o;
  o.seed = 23;
  o.width = 48;
  o.numRows = 1;
  o.pinDensity = 0.15;
  o.maxNetSpan = 20;
  o.maxNetRowSpread = 0;
  const db::Design d = gen::generate(o);
  Problem p = buildProblem(d, db::extractPanel(d, 0), {});
  detectConflicts(p);

  ExactOptions eo;
  eo.deadline = support::Deadline::after(10.0);
  const Assignment lr = LrSolver{{}}.solve(p);
  const Assignment exact = ExactSolver{eo}.solve(p);
  const Assignment ilp = IlpSolver{{}}.solve(p);
  ASSERT_TRUE(exact.provedOptimal);
  ASSERT_TRUE(ilp.provedOptimal);
  EXPECT_NEAR(exact.objective, ilp.objective, 1e-6);
  EXPECT_LE(lr.objective, exact.objective + 1e-6);
}

TEST(SolverInterface, SolversEmitCanonicalCounters) {
  const Problem p = makeProblem(29);
  obs::Collector lrObs;
  (void)LrSolver{{}}.solve(p, &lrObs);
  EXPECT_GT(lrObs.counter(obs::names::kLrIterations), 0);
  EXPECT_FALSE(lrObs.series().empty());

  obs::Collector exObs;
  ExactOptions eo;
  eo.deadline = support::Deadline::after(10.0);
  (void)ExactSolver{eo}.solve(p, &exObs);
  EXPECT_GT(exObs.counter(obs::names::kExactNodes), 0);

  obs::Collector ilpObs;
  gen::GenOptions small;
  small.seed = 23;
  small.width = 48;
  small.numRows = 1;
  small.pinDensity = 0.15;
  small.maxNetSpan = 20;
  small.maxNetRowSpread = 0;
  const db::Design d = gen::generate(small);
  Problem tiny = buildProblem(d, db::extractPanel(d, 0), {});
  detectConflicts(tiny);
  (void)IlpSolver{{}}.solve(tiny, &ilpObs);
  EXPECT_GT(ilpObs.counter(obs::names::kIlpNodes), 0);
  EXPECT_GT(ilpObs.counter(obs::names::kIlpPivots), 0);
}

TEST(SolverInterface, OptimizerHonorsCustomSolverOverride) {
  gen::GenOptions o;
  o.seed = 31;
  o.width = 120;
  o.numRows = 3;
  o.pinDensity = 0.2;
  const db::Design d = gen::generate(o);

  OptimizerOptions viaEnum;
  viaEnum.solve.method = Method::Exact;
  viaEnum.solve.exact.deadline = support::Deadline::after(5.0);
  const PinAccessPlan a = optimizePinAccess(d, viaEnum);

  OptimizerOptions viaOverride;  // method left at Lr: override must win
  viaOverride.solver = std::make_shared<ExactSolver>(viaEnum.solve.exact);
  const PinAccessPlan b = optimizePinAccess(d, viaOverride);

  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t j = 0; j < a.routes.size(); ++j) {
    EXPECT_EQ(a.routes[j].track, b.routes[j].track);
    EXPECT_EQ(a.routes[j].span, b.routes[j].span);
  }
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.stats.notes().at(std::string(cpr::obs::names::kPaoSolverNote)),
            "exact");
  EXPECT_EQ(b.stats.notes().at(std::string(cpr::obs::names::kPaoSolverNote)),
            "exact");
}

TEST(SolverInterface, KernelOverloadMatchesProblemOverload) {
  // The kernel-first entry point and the Problem convenience overload must
  // produce identical assignments for every solver behind the interface.
  gen::GenOptions o;
  o.seed = 23;
  o.width = 48;
  o.numRows = 1;
  o.pinDensity = 0.15;
  o.maxNetSpan = 20;
  o.maxNetRowSpread = 0;
  const db::Design d = gen::generate(o);
  Problem p = buildProblem(d, db::extractPanel(d, 0), {});
  detectConflicts(p);
  const PanelKernel k = PanelKernel::compile(Problem(p));

  ExactOptions eo;
  eo.deadline = support::Deadline::after(10.0);
  const std::unique_ptr<Solver> solvers[] = {
      makeSolver({.method = Method::Lr}),
      makeSolver({.method = Method::Exact, .exact = eo}),
      makeSolver({.method = Method::Ilp})};
  for (const auto& s : solvers) {
    const Assignment viaProblem = s->solve(p);
    const Assignment viaKernel = s->solve(k);
    expectSameAssignment(viaProblem, viaKernel);
  }
}

// Golden objectives captured from the nested (pre-CSR) solver paths at
// %.17g precision. The CSR kernel preserves iteration and floating-point
// order exactly, so these must keep matching to the last bit.
TEST(SolverInterface, GoldenObjectivesPinned) {
  struct Golden {
    std::uint64_t seed;
    double objective;
  };
  const Golden goldens[] = {{17, 176.42178129662054},
                            {19, 172.90642536321195},
                            {29, 207.59023232254097}};
  ExactOptions eo;
  eo.deadline = support::Deadline::after(10.0);
  for (const Golden& g : goldens) {
    const Problem p = makeProblem(g.seed);
    const Assignment lr = solveLr(p);
    EXPECT_DOUBLE_EQ(lr.objective, g.objective) << "lr seed " << g.seed;
    EXPECT_EQ(lr.violations, 0);
    const Assignment exact = solveExact(p, eo);
    EXPECT_DOUBLE_EQ(exact.objective, g.objective) << "exact seed " << g.seed;
    EXPECT_TRUE(exact.provedOptimal);
  }
  // Tiny single-panel fixture where all three solvers agree exactly.
  gen::GenOptions o;
  o.seed = 23;
  o.width = 48;
  o.numRows = 1;
  o.pinDensity = 0.15;
  o.maxNetSpan = 20;
  o.maxNetRowSpread = 0;
  const db::Design d = gen::generate(o);
  Problem tiny = buildProblem(d, db::extractPanel(d, 0), {});
  detectConflicts(tiny);
  constexpr double kTinyGolden = 18.481436464210109;
  EXPECT_DOUBLE_EQ(LrSolver{{}}.solve(tiny).objective, kTinyGolden);
  EXPECT_DOUBLE_EQ(ExactSolver{eo}.solve(tiny).objective, kTinyGolden);
  EXPECT_DOUBLE_EQ(IlpSolver{{}}.solve(tiny).objective, kTinyGolden);
}

// Design-level plan goldens (LR method, pinned objective + FNV-1a route
// digest): the full optimizer pipeline — generation, conflict detection,
// kernel compile, solve, merge — must reproduce the pre-CSR plans bit for
// bit, for every thread count.
TEST(SolverInterface, GoldenPlansPinnedAcrossThreadCounts) {
  struct Golden {
    std::uint64_t seed;
    double objective;
    std::size_t digest;
  };
  const Golden goldens[] = {{4, 488.34571741026241, 0xa8b2e703118bdeb6ULL},
                            {6, 486.15179977988981, 0x13af5ee8fbb07215ULL},
                            {8, 502.71800242058799, 0xb67a13059d15da59ULL}};
  for (const Golden& g : goldens) {
    gen::GenOptions o;
    o.seed = g.seed;
    o.width = 120;
    o.numRows = 4;
    o.pinDensity = 0.2;
    o.maxNetSpan = 40;
    const db::Design d = gen::generate(o);
    for (const int threads : {1, 4, 8}) {
      OptimizerOptions opts;
      opts.solve.method = Method::Lr;
      opts.threads = threads;
      const PinAccessPlan plan = optimizePinAccess(d, opts);
      EXPECT_DOUBLE_EQ(plan.objective, g.objective)
          << "seed " << g.seed << " threads " << threads;
      std::size_t h = 1469598103934665603ULL;
      auto mix = [&](long v) {
        h ^= static_cast<std::size_t>(v);
        h *= 1099511628211ULL;
      };
      for (const PinRoute& r : plan.routes) {
        mix(r.track);
        mix(r.span.lo);
        mix(r.span.hi);
      }
      EXPECT_EQ(h, g.digest) << "seed " << g.seed << " threads " << threads;
      EXPECT_EQ(plan.unassignedPins(), 0);
      EXPECT_GT(plan.stats.counter(obs::names::kPaoKernelBytes), 0);
    }
  }
}

TEST(SolverInterface, PlanCountersDeterministicAcrossThreadCounts) {
  gen::GenOptions o;
  o.seed = 37;
  o.width = 160;
  o.numRows = 6;
  o.pinDensity = 0.2;
  const db::Design d = gen::generate(o);

  OptimizerOptions one;
  one.threads = 1;
  OptimizerOptions many;
  many.threads = 4;
  const PinAccessPlan a = optimizePinAccess(d, one);
  const PinAccessPlan b = optimizePinAccess(d, many);
  EXPECT_EQ(a.stats.counters(), b.stats.counters());
  // Series (per-iteration LR traces tagged by panel src) also match exactly.
  ASSERT_EQ(a.stats.series().size(), b.stats.series().size());
  for (const auto& [name, s] : a.stats.series()) {
    const auto it = b.stats.series().find(name);
    ASSERT_NE(it, b.stats.series().end()) << name;
    EXPECT_EQ(s.columns, it->second.columns) << name;
    EXPECT_EQ(s.rows, it->second.rows) << name;
  }
}

}  // namespace
}  // namespace cpr::core
