#include <gtest/gtest.h>

#include <memory>

#include "core/conflict.h"
#include "core/exact_solver.h"
#include "core/interval_gen.h"
#include "core/lr_solver.h"
#include "core/optimizer.h"
#include "db/panel.h"
#include "gen/generator.h"
#include "obs/names.h"

namespace cpr::core {
namespace {

Problem makeProblem(std::uint64_t seed = 17) {
  gen::GenOptions o;
  o.seed = seed;
  o.width = 100;
  o.numRows = 2;
  o.pinDensity = 0.2;
  o.maxNetSpan = 30;
  const db::Design d = gen::generate(o);
  Problem p =
      buildProblem(d, std::vector<db::Panel>(db::extractPanels(d)), {});
  detectConflicts(p);
  return p;
}

void expectSameAssignment(const Assignment& a, const Assignment& b) {
  ASSERT_EQ(a.intervalOfPin.size(), b.intervalOfPin.size());
  for (std::size_t j = 0; j < a.intervalOfPin.size(); ++j)
    EXPECT_EQ(a.intervalOfPin[j], b.intervalOfPin[j]) << "pin " << j;
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(SolverInterface, LrMatchesFreeFunction) {
  const Problem p = makeProblem();
  const Assignment direct = solveLr(p);
  const Assignment viaIface = LrSolver{{}}.solve(p);
  expectSameAssignment(direct, viaIface);
}

TEST(SolverInterface, ExactMatchesFreeFunction) {
  const Problem p = makeProblem(19);
  ExactOptions eo;
  eo.timeLimitSeconds = 10.0;
  const Assignment direct = solveExact(p, eo);
  const Assignment viaIface = ExactSolver{eo}.solve(p);
  expectSameAssignment(direct, viaIface);
  EXPECT_TRUE(viaIface.provedOptimal);
}

TEST(SolverInterface, NamesAndFactory) {
  EXPECT_EQ(LrSolver{}.name(), "lr");
  EXPECT_EQ(ExactSolver{}.name(), "exact");
  EXPECT_EQ(IlpSolver{}.name(), "ilp");
  EXPECT_EQ(makeSolver(Method::Lr)->name(), "lr");
  EXPECT_EQ(makeSolver(Method::Exact)->name(), "exact");
  EXPECT_EQ(makeSolver(Method::Ilp)->name(), "ilp");
}

TEST(SolverInterface, AllThreeSolversAgreeOnObjective) {
  // Small instance so the generic ILP path stays fast; exact and ilp are
  // both optimal, LR is a lower bound on them.
  gen::GenOptions o;
  o.seed = 23;
  o.width = 48;
  o.numRows = 1;
  o.pinDensity = 0.15;
  o.maxNetSpan = 20;
  o.maxNetRowSpread = 0;
  const db::Design d = gen::generate(o);
  Problem p = buildProblem(d, db::extractPanel(d, 0), {});
  detectConflicts(p);

  ExactOptions eo;
  eo.timeLimitSeconds = 10.0;
  const Assignment lr = LrSolver{{}}.solve(p);
  const Assignment exact = ExactSolver{eo}.solve(p);
  const Assignment ilp = IlpSolver{{}}.solve(p);
  ASSERT_TRUE(exact.provedOptimal);
  ASSERT_TRUE(ilp.provedOptimal);
  EXPECT_NEAR(exact.objective, ilp.objective, 1e-6);
  EXPECT_LE(lr.objective, exact.objective + 1e-6);
}

TEST(SolverInterface, SolversEmitCanonicalCounters) {
  const Problem p = makeProblem(29);
  obs::Collector lrObs;
  (void)LrSolver{{}}.solve(p, &lrObs);
  EXPECT_GT(lrObs.counter(obs::names::kLrIterations), 0);
  EXPECT_FALSE(lrObs.series().empty());

  obs::Collector exObs;
  ExactOptions eo;
  eo.timeLimitSeconds = 10.0;
  (void)ExactSolver{eo}.solve(p, &exObs);
  EXPECT_GT(exObs.counter(obs::names::kExactNodes), 0);

  obs::Collector ilpObs;
  gen::GenOptions small;
  small.seed = 23;
  small.width = 48;
  small.numRows = 1;
  small.pinDensity = 0.15;
  small.maxNetSpan = 20;
  small.maxNetRowSpread = 0;
  const db::Design d = gen::generate(small);
  Problem tiny = buildProblem(d, db::extractPanel(d, 0), {});
  detectConflicts(tiny);
  (void)IlpSolver{{}}.solve(tiny, &ilpObs);
  EXPECT_GT(ilpObs.counter(obs::names::kIlpNodes), 0);
  EXPECT_GT(ilpObs.counter(obs::names::kIlpPivots), 0);
}

TEST(SolverInterface, OptimizerHonorsCustomSolverOverride) {
  gen::GenOptions o;
  o.seed = 31;
  o.width = 120;
  o.numRows = 3;
  o.pinDensity = 0.2;
  const db::Design d = gen::generate(o);

  OptimizerOptions viaEnum;
  viaEnum.method = Method::Exact;
  viaEnum.exact.timeLimitSeconds = 5.0;
  const PinAccessPlan a = optimizePinAccess(d, viaEnum);

  OptimizerOptions viaOverride;  // method left at Lr: override must win
  viaOverride.solver = std::make_shared<ExactSolver>(viaEnum.exact);
  const PinAccessPlan b = optimizePinAccess(d, viaOverride);

  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t j = 0; j < a.routes.size(); ++j) {
    EXPECT_EQ(a.routes[j].track, b.routes[j].track);
    EXPECT_EQ(a.routes[j].span, b.routes[j].span);
  }
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.stats.notes().at("pao.solver"), "exact");
  EXPECT_EQ(b.stats.notes().at("pao.solver"), "exact");
}

TEST(SolverInterface, PlanCountersDeterministicAcrossThreadCounts) {
  gen::GenOptions o;
  o.seed = 37;
  o.width = 160;
  o.numRows = 6;
  o.pinDensity = 0.2;
  const db::Design d = gen::generate(o);

  OptimizerOptions one;
  one.threads = 1;
  OptimizerOptions many;
  many.threads = 4;
  const PinAccessPlan a = optimizePinAccess(d, one);
  const PinAccessPlan b = optimizePinAccess(d, many);
  EXPECT_EQ(a.stats.counters(), b.stats.counters());
  // Series (per-iteration LR traces tagged by panel src) also match exactly.
  ASSERT_EQ(a.stats.series().size(), b.stats.series().size());
  for (const auto& [name, s] : a.stats.series()) {
    const auto it = b.stats.series().find(name);
    ASSERT_NE(it, b.stats.series().end()) << name;
    EXPECT_EQ(s.columns, it->second.columns) << name;
    EXPECT_EQ(s.rows, it->second.rows) << name;
  }
}

}  // namespace
}  // namespace cpr::core
