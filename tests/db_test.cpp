#include <gtest/gtest.h>

#include "db/design.h"
#include "db/panel.h"

namespace cpr::db {
namespace {

using geom::Interval;
using geom::Rect;

/// Small two-row design used throughout: 40 columns, 10 tracks per row.
Design makeDesign() {
  Design d("t", /*width=*/40, /*numRows=*/2, /*tracksPerRow=*/10);
  const Index nA = d.addNet("A");
  const Index nB = d.addNet("B");
  d.addPin("a1", nA, Rect{Interval::point(5), Interval{2, 5}});
  d.addPin("a2", nA, Rect{Interval::point(20), Interval{3, 6}});
  d.addPin("b1", nB, Rect{Interval::point(10), Interval{12, 15}});
  d.addPin("b2", nB, Rect{Interval::point(30), Interval{13, 16}});
  return d;
}

TEST(Design, BasicAccessors) {
  const Design d = makeDesign();
  EXPECT_EQ(d.width(), 40);
  EXPECT_EQ(d.gridHeight(), 20);
  EXPECT_EQ(d.pins().size(), 4u);
  EXPECT_EQ(d.nets().size(), 2u);
  EXPECT_EQ(d.rowTracks(1), Interval(10, 19));
  EXPECT_EQ(d.rowOfTrack(9), 0);
  EXPECT_EQ(d.rowOfTrack(10), 1);
}

TEST(Design, PinRowDerivedFromTracks) {
  const Design d = makeDesign();
  EXPECT_EQ(d.pin(0).row, 0);
  EXPECT_EQ(d.pin(2).row, 1);
}

TEST(Design, NetBoxCoversAllPins) {
  const Design d = makeDesign();
  const Rect boxA = d.netBox(0);
  EXPECT_EQ(boxA.x, Interval(5, 20));
  EXPECT_EQ(boxA.y, Interval(2, 6));
  const Rect boxB = d.netBox(1);
  EXPECT_EQ(boxB.x, Interval(10, 30));
}

TEST(Design, ValidateAcceptsWellFormed) {
  EXPECT_EQ(makeDesign().validate(), "");
}

TEST(Design, ValidateRejectsOutOfDiePin) {
  Design d("t", 10, 1, 10);
  const Index n = d.addNet("A");
  d.addPin("p", n, Rect{Interval::point(50), Interval{1, 3}});
  d.addPin("q", n, Rect{Interval::point(2), Interval{1, 3}});
  EXPECT_NE(d.validate().find("outside die"), std::string::npos);
}

TEST(Design, ValidateRejectsEmptyNet) {
  Design d("t", 10, 1, 10);
  d.addNet("empty");
  EXPECT_NE(d.validate().find("no pins"), std::string::npos);
}

TEST(Design, ValidateRejectsRowStraddlingPin) {
  Design d("t", 10, 2, 10);
  const Index n = d.addNet("A");
  d.addPin("p", n, Rect{Interval::point(1), Interval{8, 12}});
  d.addPin("q", n, Rect{Interval::point(5), Interval{1, 3}});
  EXPECT_NE(d.validate().find("multiple rows"), std::string::npos);
}

TEST(Panel, ExtractAssignsEveryPinOnce) {
  const Design d = makeDesign();
  const std::vector<Panel> panels = extractPanels(d);
  ASSERT_EQ(panels.size(), 2u);
  EXPECT_EQ(panels[0].pins.size(), 2u);
  EXPECT_EQ(panels[1].pins.size(), 2u);
  EXPECT_EQ(panels[0].tracks, Interval(0, 9));
  EXPECT_EQ(panels[1].tracks, Interval(10, 19));
}

TEST(Panel, FreeSpaceIsWholeDieWithoutBlockages) {
  const Design d = makeDesign();
  const Panel p = extractPanel(d, 0);
  for (geom::Coord t = 0; t <= 9; ++t) {
    ASSERT_EQ(p.freeOn(t).intervals().size(), 1u);
    EXPECT_EQ(p.freeOn(t).intervals().front(), Interval(0, 39));
  }
}

TEST(Panel, BlockageCarvesFreeSpace) {
  Design d = makeDesign();
  d.addBlockage(Layer::M2, Rect{Interval{10, 14}, Interval{3, 4}});
  const Panel p = extractPanel(d, 0);
  EXPECT_TRUE(p.freeOn(2).containsAll(Interval{10, 14}));   // untouched track
  EXPECT_FALSE(p.freeOn(3).overlaps(Interval{10, 14}));
  EXPECT_FALSE(p.freeOn(4).contains(12));
  EXPECT_EQ(p.freeOn(3).segmentContaining(5), Interval(0, 9));
  EXPECT_EQ(p.freeOn(3).segmentContaining(20), Interval(15, 39));
}

TEST(Panel, M3BlockagesDoNotAffectM2FreeSpace) {
  Design d = makeDesign();
  d.addBlockage(Layer::M3, Rect{Interval{10, 14}, Interval{3, 4}});
  const Panel p = extractPanel(d, 0);
  EXPECT_TRUE(p.freeOn(3).containsAll(Interval{10, 14}));
}

}  // namespace
}  // namespace cpr::db
