#include <gtest/gtest.h>

#include "route/drc.h"
#include "route/grid.h"

namespace cpr::route {
namespace {

/// Helper building node ids on a 40x20 grid without a design.
constexpr Coord kW = 40;
constexpr Coord kH = 20;
int m2(Coord x, Coord y) { return y * kW + x; }
int m3(Coord x, Coord y) { return kW * kH + y * kW + x; }

DrcReport check(const std::vector<std::vector<int>>& nodes,
                const std::vector<std::vector<ViaSite>>& vias,
                const DrcRules& rules = {}) {
  return checkDesignRules(DrcInput{nodes, vias, kW, kH}, rules);
}

TEST(Drc, CleanWhenFarApart) {
  std::vector<std::vector<int>> nodes{{m2(0, 5), m2(1, 5), m2(2, 5)},
                                      {m2(10, 5), m2(11, 5)}};
  std::vector<std::vector<ViaSite>> vias{{}, {}};
  const DrcReport r = check(nodes, vias);
  EXPECT_EQ(r.violations, 0);
  EXPECT_FALSE(r.dirty[0]);
  EXPECT_FALSE(r.dirty[1]);
}

TEST(Drc, SameTrackLineEndsTooClose) {
  // Gap of 1 column between diff-net runs: extensions (1 each) overlap.
  std::vector<std::vector<int>> nodes{{m2(0, 5), m2(1, 5)},
                                      {m2(3, 5), m2(4, 5)}};
  std::vector<std::vector<ViaSite>> vias{{}, {}};
  const DrcReport r = check(nodes, vias);
  EXPECT_GT(r.violations, 0);
  EXPECT_TRUE(r.dirty[0]);
  EXPECT_TRUE(r.dirty[1]);
}

TEST(Drc, GapOfTwoIsLegal) {
  std::vector<std::vector<int>> nodes{{m2(0, 5), m2(1, 5)},
                                      {m2(4, 5), m2(5, 5)}};
  std::vector<std::vector<ViaSite>> vias{{}, {}};
  EXPECT_EQ(check(nodes, vias).violations, 0);
}

TEST(Drc, AdjacentTracksDoNotInteract) {
  // Same columns, neighbouring tracks: fine in unidirectional routing.
  std::vector<std::vector<int>> nodes{{m2(0, 5), m2(1, 5)},
                                      {m2(0, 6), m2(1, 6)}};
  std::vector<std::vector<ViaSite>> vias{{}, {}};
  EXPECT_EQ(check(nodes, vias).violations, 0);
}

TEST(Drc, M3ColumnsCheckedToo) {
  std::vector<std::vector<int>> nodes{{m3(7, 0), m3(7, 1)},
                                      {m3(7, 3), m3(7, 4)}};
  std::vector<std::vector<ViaSite>> vias{{}, {}};
  EXPECT_GT(check(nodes, vias).violations, 0);
}

TEST(Drc, SameNetRunsNeverViolate) {
  std::vector<std::vector<int>> nodes{
      {m2(0, 5), m2(1, 5), m2(3, 5), m2(4, 5)}};  // gap 1, same net
  std::vector<std::vector<ViaSite>> vias{{}};
  EXPECT_EQ(check(nodes, vias).violations, 0);
}

TEST(Drc, ExtensionRespectsRuleParameter) {
  std::vector<std::vector<int>> nodes{{m2(0, 5), m2(1, 5)},
                                      {m2(4, 5), m2(5, 5)}};
  std::vector<std::vector<ViaSite>> vias{{}, {}};
  DrcRules wide;
  wide.lineEndExtension = 2;  // gap 2 now insufficient
  EXPECT_GT(check(nodes, vias, wide).violations, 0);
  DrcRules none;
  none.lineEndExtension = 0;
  EXPECT_EQ(check(nodes, vias, none).violations, 0);
}

TEST(Drc, ViaSpacingSameTrackSameLevel) {
  std::vector<std::vector<int>> nodes{{}, {}};
  std::vector<std::vector<ViaSite>> vias{{{10, 5, 2}}, {{11, 5, 2}}};
  EXPECT_GT(check(nodes, vias).violations, 0);
  vias = {{{10, 5, 2}}, {{12, 5, 2}}};  // two apart: legal
  EXPECT_EQ(check(nodes, vias).violations, 0);
}

TEST(Drc, ViaLevelsAreIndependent) {
  std::vector<std::vector<int>> nodes{{}, {}};
  // V1 next to V2: different cut masks, no violation.
  std::vector<std::vector<ViaSite>> vias{{{10, 5, 1}}, {{11, 5, 2}}};
  EXPECT_EQ(check(nodes, vias).violations, 0);
  // Same level, same site, different nets: violation.
  vias = {{{10, 5, 1}}, {{10, 5, 1}}};
  EXPECT_GT(check(nodes, vias).violations, 0);
}

TEST(Drc, ViaAdjacentTracksLegal) {
  std::vector<std::vector<int>> nodes{{}, {}};
  std::vector<std::vector<ViaSite>> vias{{{10, 5, 2}}, {{10, 6, 2}}};
  EXPECT_EQ(check(nodes, vias).violations, 0);
}

TEST(Drc, SameNetViasNeverViolate) {
  std::vector<std::vector<int>> nodes{{}};
  std::vector<std::vector<ViaSite>> vias{{{10, 5, 2}, {11, 5, 2}}};
  EXPECT_EQ(check(nodes, vias).violations, 0);
}

TEST(Drc, ExtensionClipsAtDieEdge) {
  // Run touching column 0: the extension must clip, not wrap or crash.
  std::vector<std::vector<int>> nodes{{m2(0, 5)}, {m2(39, 5)}};
  std::vector<std::vector<ViaSite>> vias{{}, {}};
  EXPECT_EQ(check(nodes, vias).violations, 0);
}

}  // namespace
}  // namespace cpr::route
