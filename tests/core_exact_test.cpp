#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "core/ilp_builder.h"
#include "core/lr_solver.h"
#include "ilp/branch_and_bound.h"
#include "test_util.h"

namespace cpr::core {
namespace {

namespace tu = testutil;

TEST(ExactSolver, MatchesBruteForceOnTinyInstances) {
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 40 && checked < 12; ++seed) {
    const db::Design d = tu::tinyDesign(seed, 20, 0.3);
    GenOptions g;
    g.maxExtent = 4;  // keep candidate counts enumerable
    const Problem p = tu::panelProblem(d, g);
    const std::optional<double> ref = tu::bruteForceOptimum(p);
    if (!ref) continue;
    ++checked;
    ExactStats stats;
    const Assignment a = solveExact(p, {}, &stats);
    EXPECT_TRUE(a.provedOptimal) << "seed " << seed;
    EXPECT_NEAR(a.objective, *ref, 1e-6) << "seed " << seed;
    EXPECT_EQ(a.violations, 0) << "seed " << seed;
    EXPECT_GE(stats.rootUpperBound, *ref - 1e-6) << "seed " << seed;
  }
  EXPECT_GE(checked, 5) << "too few enumerable instances — loosen the guard";
}

TEST(ExactSolver, MatchesGenericLpBranchAndBound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const db::Design d = tu::tinyDesign(seed, 28, 0.35);
    GenOptions g;
    g.maxExtent = 6;
    const Problem p = tu::panelProblem(d, g);
    const Assignment a = solveExact(p);
    ASSERT_TRUE(a.provedOptimal);

    const IlpBuild build = buildIlpModel(p);
    ilp::IlpOptions opts;
    opts.lp.implicitUnitBounds = true;  // every var sits in a pin equality
    const ilp::IlpResult r = ilp::solveBinaryIlp(build.model, opts);
    ASSERT_EQ(r.status, ilp::IlpStatus::Optimal) << "seed " << seed;
    const Assignment viaIlp = decodeIlpSolution(p, build, r.x);
    EXPECT_NEAR(a.objective, viaIlp.objective, 1e-6) << "seed " << seed;
  }
}

TEST(ExactSolver, PairwiseEncodingGivesSameOptimum) {
  const db::Design d = tu::tinyDesign(3, 24, 0.35);
  GenOptions g;
  g.maxExtent = 5;
  const Problem p = tu::panelProblem(d, g);
  const IlpBuild cliqueEnc = buildIlpModel(p, /*pairwiseConflicts=*/false);
  const IlpBuild pairEnc = buildIlpModel(p, /*pairwiseConflicts=*/true);
  ilp::IlpOptions opts;
  opts.lp.implicitUnitBounds = true;
  const ilp::IlpResult a = ilp::solveBinaryIlp(cliqueEnc.model, opts);
  const ilp::IlpResult b = ilp::solveBinaryIlp(pairEnc.model, opts);
  ASSERT_EQ(a.status, ilp::IlpStatus::Optimal);
  ASSERT_EQ(b.status, ilp::IlpStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
  // Clique encoding needs no more rows than the pairwise one.
  EXPECT_LE(cliqueEnc.model.numConstraints(), pairEnc.model.numConstraints());
}

TEST(ExactSolver, DominatesLr) {
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    const db::Design d = tu::tinyDesign(seed, 48, 0.45);
    const Problem p = tu::panelProblem(d);
    const Assignment lr = solveLr(p);
    const Assignment exact = solveExact(p);
    ASSERT_TRUE(exact.provedOptimal) << "seed " << seed;
    EXPECT_LE(lr.objective, exact.objective + 1e-6) << "seed " << seed;
    EXPECT_EQ(audit(p, exact).overlapsBetweenNets, 0);
  }
}

TEST(ExactSolver, NodeLimitReturnsIncumbentUnproven) {
  // A dense multi-row instance: the duality gap cannot close in one node.
  gen::GenOptions g;
  g.seed = 9;
  g.width = 96;
  g.numRows = 3;
  g.pinDensity = 0.3;
  g.maxNetSpan = 48;
  const db::Design d = gen::generate(g);
  Problem p = buildProblem(d, db::extractPanels(d));
  detectConflicts(p);
  ExactOptions opts;
  opts.maxNodes = 1;
  ExactStats stats;
  const Assignment a = solveExact(p, opts, &stats);
  EXPECT_FALSE(a.provedOptimal);
  // Incumbent comes from the LR seed and is still legal.
  EXPECT_EQ(a.violations, 0);
  EXPECT_EQ(audit(p, a).unassignedPins, 0);
}

TEST(ExactSolver, AssignmentIsAlwaysLegal) {
  for (std::uint64_t seed = 70; seed < 80; ++seed) {
    const db::Design d = tu::tinyDesign(seed, 40, 0.5);
    const Problem p = tu::panelProblem(d);
    const Assignment a = solveExact(p);
    const AssignmentAudit audit_ = audit(p, a);
    EXPECT_EQ(a.violations, 0);
    EXPECT_EQ(audit_.overlapsBetweenNets, 0);
    EXPECT_EQ(audit_.unassignedPins, 0);
    EXPECT_TRUE(audit_.eachPinCovered);
    EXPECT_GE(a.objective, tu::minimalProfitBound(p) - 1e-9);
  }
}

}  // namespace
}  // namespace cpr::core
