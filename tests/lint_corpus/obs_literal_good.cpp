// lint-as: src/core/example.cpp
// lint-expect: none
#include "obs/collector.h"
#include "obs/names.h"

void record(cpr::obs::Collector* obs) {
  cpr::obs::add(obs, cpr::obs::names::kPaoPanels);
  // cpr-lint: allow(OBS-LITERAL)
  cpr::obs::add(obs, "drc.violations");
  cpr::obs::add(obs, "ilp.nodes", 2);  // cpr-lint: allow(OBS-LITERAL)
  cpr::obs::add(obs, "not.a.reserved.prefix");
}
