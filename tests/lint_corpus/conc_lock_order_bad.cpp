// lint-as: src/viz/conc_lock_order_bad.cpp
// lint-expect: LOCK-ORDER@12
#include <mutex>

/// Classic ABBA: two functions take the same two mutexes in opposite
/// orders. The cycle is reported once, anchored at the site where the
/// lexicographically-first mutex acquires the second.
class Inversion {
 public:
  void forward() {
    std::lock_guard<std::mutex> la(alpha_);
    std::lock_guard<std::mutex> lb(beta_);
  }
  void reverse() {
    std::lock_guard<std::mutex> lb(beta_);
    std::lock_guard<std::mutex> la(alpha_);
  }

 private:
  std::mutex alpha_;
  std::mutex beta_;
};
