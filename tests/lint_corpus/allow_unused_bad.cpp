// lint-as: src/viz/example.cpp
// lint-expect: ALLOW-UNUSED@5
#include <string>

// cpr-lint: allow(BANNED-FN)
std::string greet() { return "hello"; }
