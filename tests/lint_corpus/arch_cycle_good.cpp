// lint-tree
// lint-expect: none
// lint-file: src/route/base.h
#pragma once
struct Base {
  int v = 0;
};
// lint-file: src/route/left.h
#pragma once
#include "route/base.h"
struct Left {
  Base b;
};
// lint-file: src/route/right.h
#pragma once
#include "route/base.h"
struct Right {
  Base b;
};
// lint-file: src/route/top.cpp
#include "route/left.h"
#include "route/right.h"
int topV(const Left& l, const Right& r) { return l.b.v + r.b.v; }
