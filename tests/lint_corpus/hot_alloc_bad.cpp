// lint-as: src/core/hot_alloc_bad.cpp
// lint-expect: HOT-ALLOC@11 HOT-ALLOC@12
#include <vector>

/// Direct allocations inside a CPR_HOT kernel: `new` and a push_back with
/// no prior reserve() on the same receiver both fire, each with a
/// one-node call chain.
void hotKernel(std::vector<int>& out) CPR_HOT {
  out.clear();
  for (int i = 0; i < 8; ++i) {
    int* p = new int(i);
    out.push_back(*p);
    delete p;
  }
}
