// lint-as: src/serve/conc_blocking_bad.cpp
// lint-expect: LOCK-BLOCKING-CALL@13
#include <mutex>

/// Regression shape from the routing service (since fixed): the
/// "accepted" frame was written to the socket while the admission path
/// still held the queue mutex — one client that stopped reading stalled
/// every admission, every pop, and shutdown behind that lock.
class Admission {
 public:
  void admit(int fd, const char* frame, unsigned long n) {
    std::lock_guard<std::mutex> lock(mu_);
    send(fd, frame, n, 0);
    depth_ += 1;
  }

 private:
  std::mutex mu_;
  long depth_ CPR_GUARDED_BY(mu_) = 0;
};
