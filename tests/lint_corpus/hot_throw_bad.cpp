// lint-as: src/core/hot_throw_bad.cpp
// lint-expect: HOT-THROW@9
#include <stdexcept>

/// A throw one call hop below a CPR_HOT root, with no try/catch in the
/// throwing function's own body: kernels report failure through Status /
/// sentinel values, never by unwinding across panel workers.
int pick(int v) {
  if (v < 0) throw std::out_of_range("negative index");
  return v;
}

int hotRoot(int v) CPR_HOT { return pick(v); }
