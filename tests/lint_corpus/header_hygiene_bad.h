// lint-as: src/core/example.h
// lint-expect: HEADER-HYGIENE@1 HEADER-HYGIENE@5
#include <vector>

using namespace std;

inline int twice(int v) { return 2 * v; }
