// lint-as: src/core/my_solver.cpp
// lint-expect: DEADLINE-RAW@6 DEADLINE-RAW@10
#include <chrono>

struct LegacyOptions {
  double timeLimitSeconds = 1e9;
};

bool pollWallClock(std::chrono::steady_clock::time_point until) {
  return std::chrono::steady_clock::now() >= until;
}
