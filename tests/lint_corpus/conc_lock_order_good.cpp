// lint-as: src/viz/conc_lock_order_good.cpp
// lint-expect: none
#include <mutex>

/// No cycle: one function nests beta under alpha (a consistent global
/// order), and the other takes both atomically with std::scoped_lock —
/// an atomic multi-acquisition has no internal order, so it adds no
/// edges to the acquisition graph.
class Ordered {
 public:
  void nested() {
    std::lock_guard<std::mutex> la(alpha_);
    std::lock_guard<std::mutex> lb(beta_);
  }
  void atomicPair() {
    std::scoped_lock both(beta_, alpha_);
    shared_ += 1;
  }

 private:
  std::mutex alpha_;
  std::mutex beta_;
  long shared_ CPR_GUARDED_BY(alpha_) = 0;
};
