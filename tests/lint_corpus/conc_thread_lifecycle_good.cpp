// lint-as: src/viz/conc_thread_lifecycle_good.cpp
// lint-expect: none
#include <thread>
#include <utility>
#include <vector>

/// Every sanctioned ending for a thread: joined, detached, or moved onto
/// a CPR_THREAD_REAPER field whose owner documents the join.
class Tidy {
 public:
  void joined() {
    std::thread worker([] {});
    worker.join();
  }
  void detached() {
    std::thread worker([] {});
    worker.detach();
  }
  void parked() {
    std::thread worker([] {});
    pool_.push_back(std::move(worker));
  }

 private:
  /// Joined by the destructor.
  std::vector<std::thread> pool_ CPR_THREAD_REAPER;
};
