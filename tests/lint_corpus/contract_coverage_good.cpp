// lint-as: src/core/panel_kernel.cpp
// lint-expect: none
#include <cstddef>
#include <vector>

#include "support/contracts.h"

const int* row(const std::vector<int>& off, const std::vector<int>& data, int k) {
  CPR_DCHECK(std::size_t(k + 1) < off.size());
  return data.data() + off[k];
}

double punType(const unsigned char* bytes) {
  CPR_DCHECK(bytes != nullptr);
  return *reinterpret_cast<const double*>(bytes);
}
