// lint-tree
// lint-expect: none
// lint-file: src/viz/palette.h
#pragma once
inline int paletteSize() { return 16; }
// lint-file: tests/palette_test.cpp
#include "viz/palette.h"
int paletteProbe() { return paletteSize(); }
