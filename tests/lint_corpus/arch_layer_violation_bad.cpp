// lint-tree
// lint-expect: LAYER-VIOLATION@10 LAYER-VIOLATION@16
// lint-file: src/core/thing.h
#pragma once
struct Thing {
  int id = 0;
};
// lint-file: src/geom/shape.h
#pragma once
#include "core/thing.h"
struct Shape {
  Thing t;
};
// lint-file: src/support/helper.h
#pragma once
#include "core/thing.h"
inline int helperId(const Thing& t) { return t.id; }
// lint-file: src/geom/shape.cpp
#include "geom/shape.h"
#include "support/helper.h"
int shapeId(const Shape& s) { return helperId(s.t); }
