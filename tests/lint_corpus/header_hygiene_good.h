// lint-as: src/core/example.h
// lint-expect: none
#pragma once

#include <vector>

namespace cpr::core {
inline int twice(int v) { return 2 * v; }
}  // namespace cpr::core
