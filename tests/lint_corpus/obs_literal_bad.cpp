// lint-as: src/core/example.cpp
// lint-expect: OBS-LITERAL@6 OBS-LITERAL@8
#include "obs/collector.h"

void record(cpr::obs::Collector* obs) {
  cpr::obs::add(obs, "pao.panels");
  // a commented-out "route.ripups" literal must NOT fire
  cpr::obs::add(obs, "route.astar.pops", 3);
}
