// lint-as: src/core/panel_kernel.cpp
// lint-expect: CONTRACT-COVERAGE@7 CONTRACT-COVERAGE@11
#include <cstddef>
#include <vector>

const int* row(const std::vector<int>& off, const std::vector<int>& data, int k) {
  return data.data() + off[k];
}

double punType(const unsigned char* bytes) {
  return *reinterpret_cast<const double*>(bytes);
}
