// lint-as: src/viz/example.cpp
// lint-expect: BANNED-FN@8 BANNED-FN@9 BANNED-FN@10
#include <cstdio>
#include <cstdlib>
#include <iostream>

int shout(const char* s, char* buf) {
  const int v = atoi(s);
  sprintf(buf, "%d", v);
  std::cout << buf << std::endl;
  return v;
}
