// lint-as: src/core/panel_kernel.cpp
// lint-expect: THROW-BOUNDARY@7 THROW-BOUNDARY@11
#include <cstdlib>
#include <stdexcept>

int mustBePositive(int v) {
  if (v < 0) throw std::invalid_argument("negative");
  return v;
}

void hardStop() { std::abort(); }
