// lint-as: src/route/stats.cpp
// lint-expect: none
#include <iostream>
#include <map>
#include <string>
#include <unordered_map>
// Iterating an unordered container is fine while the loop only accumulates;
// emitting per-element output is fine from an ordered container.
int totalCount(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& entry : counts) total += entry.second;
  return total;
}
void dumpSorted(const std::map<std::string, int>& sorted) {
  for (const auto& entry : sorted) std::cout << entry.first;
}
