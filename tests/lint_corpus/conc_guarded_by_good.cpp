// lint-as: src/viz/conc_guarded_by_good.cpp
// lint-expect: none
#include <mutex>

/// Every sanctioned way to reach a guarded field: a lock_guard, a
/// unique_lock, a CPR_REQUIRES contract (the caller supplied the lock),
/// and the constructor/destructor exemption (no concurrent access can
/// exist while the object is being built or torn down).
class Counter {
 public:
  Counter() { n_ = 0; }
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++n_;
  }
  void alreadyHeld() CPR_REQUIRES(mu_) { ++n_; }
  long read() {
    std::unique_lock<std::mutex> lock(mu_);
    return n_;
  }

 private:
  std::mutex mu_;
  long n_ CPR_GUARDED_BY(mu_) = 0;
};
