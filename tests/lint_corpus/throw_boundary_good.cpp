// lint-as: src/lefdef/parser_util.cpp
// lint-expect: none
#include <stdexcept>

// Parsers outside the trySolve panel boundary may throw; the boundary
// converts anything escaping a solver into a support::Status instead.
int parsePositive(int v) {
  if (v < 0) throw std::invalid_argument("negative");
  return v;
}
