// lint-as: src/serve/conc_blocking_good.cpp
// lint-expect: none
#include <mutex>

/// The sanctioned shapes: bookkeeping under the queue mutex with the
/// socket write outside it, and a blocking write under a mutex that
/// exists to serialize writes — annotated CPR_MAY_BLOCK at the
/// declaration, where reviewers can see the policy.
class Writer {
 public:
  void deliver(int fd, const char* frame, unsigned long n) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      depth_ += 1;
    }
    std::lock_guard<std::mutex> wlock(writeMu_);
    send(fd, frame, n, 0);
  }

 private:
  std::mutex mu_;
  std::mutex writeMu_ CPR_MAY_BLOCK;
  long depth_ CPR_GUARDED_BY(mu_) = 0;
};
