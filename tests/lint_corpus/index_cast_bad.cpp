// lint-as: src/core/lr_solver.cpp
// lint-expect: INDEX-CAST@5 INDEX-CAST@6
#include <cstddef>
double profitAt(const double* p, int i, unsigned n) {
  const std::size_t j = static_cast<std::size_t>(i);
  const std::size_t k = static_cast<size_t>(i);
  const std::size_t bound = std::size_t(n);  // functional cast: legal
  return j < bound && k < bound ? p[j] + p[k] : 0.0;
}
