// lint-as: src/core/hot_cold_ok_good.cpp
// lint-expect: none
#include <string>
#include <vector>

/// CPR_COLD_OK is the sanctioned escape hatch: the annotated callee is
/// excluded from the hot closure entirely, so its allocations (and
/// anything it calls) never fire. The annotation is visible in the
/// signature, which is the point — cold islands are a review decision,
/// not a per-line suppression.
void trace(std::vector<std::string>& log, int v) CPR_COLD_OK {
  log.push_back(std::to_string(v));
}

int hotRoot(std::vector<std::string>& log, int v) CPR_HOT {
  if (v < 0) trace(log, v);
  return v * 2;
}
