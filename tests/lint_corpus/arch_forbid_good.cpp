// lint-tree
// lint-expect: none
// lint-file: src/ilp/seam.h
#pragma once
struct Seam {};
// lint-file: src/core/user.cpp
#include "ilp/seam.h"
static Seam* gSeam = nullptr;
