// lint-as: src/viz/conc_thread_lifecycle_bad.cpp
// lint-expect: THREAD-LIFECYCLE@13 THREAD-LIFECYCLE@16 THREAD-LIFECYCLE@20
#include <thread>
#include <vector>

/// Three leaks: a local std::thread that reaches end of scope joinable
/// (std::terminate), a bare temporary destroyed at its own semicolon,
/// and a thread-owning field with no CPR_THREAD_REAPER annotation (so no
/// declared owner of the join discipline).
class Leaky {
 public:
  void local() {
    std::thread worker([] {});
  }
  void temporary() {
    std::thread([] {});
  }

 private:
  std::vector<std::thread> pool_;
};
