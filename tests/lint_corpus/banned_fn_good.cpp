// lint-as: src/viz/example.cpp
// lint-expect: none
#include <cstdio>
#include <iostream>
#include <string>

int shout(const std::string& s, char* buf, std::size_t n) {
  const int v = std::stoi(s);
  std::snprintf(buf, n, "%d", v);
  std::cout << buf << '\n';
  return v;
}
