// lint-tree
// lint-expect: DEAD-HEADER@4
// lint-file: src/eval/unused.h
#pragma once
inline int twice(int x) { return 2 * x; }
// lint-file: src/eval/metrics.h
#pragma once
inline int score(int x) { return x + 1; }
// lint-file: src/eval/metrics.cpp
#include "eval/metrics.h"
int fullScore(int x) { return score(x); }
