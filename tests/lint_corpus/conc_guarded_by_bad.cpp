// lint-as: src/viz/conc_guarded_by_bad.cpp
// lint-expect: GUARDED-BY@9 GUARDED-BY@12
#include <mutex>

/// A CPR_GUARDED_BY field touched with no lock held, and under the wrong
/// lock; both accesses fire. The properly locked method does not.
class Counter {
 public:
  void bare() { ++n_; }
  void wrongLock() {
    std::lock_guard<std::mutex> lock(other_);
    n_ = 0;
  }
  void locked() {
    std::lock_guard<std::mutex> lock(mu_);
    ++n_;
  }

 private:
  std::mutex mu_;
  std::mutex other_;
  long n_ CPR_GUARDED_BY(mu_) = 0;
};
