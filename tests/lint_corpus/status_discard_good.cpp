// lint-as: src/serve/status_discard_good.cpp
// lint-expect: none
struct Status {
  bool ok = true;
};

/// Checked and explicitly-voided Status results stay quiet: the rule only
/// fires on a bare expression statement, the one shape where the result
/// provably goes nowhere.
Status flush(int fd) { return Status{fd >= 0}; }

bool tick(int fd) {
  const Status s = flush(fd);
  (void)flush(fd);  // best-effort second flush; failure is ignorable
  return s.ok;
}
