// lint-as: src/serve/status_discard_bad.cpp
// lint-expect: STATUS-DISCARD@12
struct Status {
  bool ok = true;
};

/// A Status-returning call used as a bare expression statement. The rule
/// backs up the [[nodiscard]] sweep at the token level, so it also fires
/// in builds where the compiler warning is off.
Status flush(int fd) { return Status{fd >= 0}; }

void tick(int fd) { flush(fd); }
