// lint-as: src/viz/example.cpp
// lint-expect: none
#include <cstdlib>

// cpr-lint: allow(BANNED-FN)
int parseLegacy(const char* s) { return atoi(s); }
