// lint-as: src/core/hot_reserve_good.cpp
// lint-expect: none
#include <vector>

/// The scratch-arena idiom the HOT-ALLOC growth rule is built around:
/// push_back is exempt because the same receiver was reserve()d earlier
/// in the same body, and the CPR_NOALLOC helper passes its standalone
/// body check because it only reads.
int peak(const std::vector<int>& xs) CPR_NOALLOC {
  int best = 0;
  for (int x : xs) best = x > best ? x : best;
  return best;
}

int hotKernel(std::vector<int>& out, int n) CPR_HOT {
  out.clear();
  out.reserve(static_cast<unsigned long>(n));
  for (int i = 0; i < n; ++i) out.push_back(i * i);
  return peak(out);
}
