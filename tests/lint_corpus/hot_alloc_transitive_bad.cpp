// lint-as: src/core/hot_alloc_transitive_bad.cpp
// lint-expect: HOT-ALLOC@10
#include <string>

/// The allocation sits two intra-project call hops below the annotated
/// root; the diagnostic lands on the allocating call and carries the
/// full chain hotRoot -> spill -> format. Neither intermediate function
/// carries an annotation of its own.
int format(int v) {
  const std::string s = std::to_string(v);
  return static_cast<int>(s.size());
}

int spill(int v) { return format(v) + 1; }

int hotRoot(int v) CPR_HOT { return spill(v); }
