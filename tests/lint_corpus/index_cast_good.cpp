// lint-as: src/eval/metrics.cpp
// lint-expect: none
#include <cstddef>
// Outside the strong-index kernel/solver scope the spelled-out cast stays
// legal; INDEX-CAST is a src/core kernel-file rule only.
double meanAt(const double* p, int i) {
  return p[static_cast<std::size_t>(i)];
}
