// lint-as: src/route/stats.cpp
// lint-expect: DETERMINISM@9 DETERMINISM@14
#include <iostream>
#include <string>
#include <unordered_map>
struct Collector { void add(int v); };
void dumpCounts(const std::unordered_map<std::string, int>& counts) {
  std::ostream& os = std::cout;
  for (const auto& entry : counts) {
    os << entry.first << entry.second;
  }
}
void addCounts(Collector* c, const std::unordered_map<std::string, int>& m) {
  for (const auto& entry : m) c->add(entry.second);
}
