// lint-as: src/core/hot_throw_containment_good.cpp
// lint-expect: none
#include <stdexcept>

/// The containment idiom from Solver::trySolve: a throw inside a
/// try/catch of the same function body never unwinds out of the hot
/// closure, so HOT-THROW stays quiet.
int guarded(int v) {
  try {
    if (v < 0) throw std::out_of_range("negative index");
    return v;
  } catch (const std::out_of_range&) {
    return 0;
  }
}

int hotRoot(int v) CPR_HOT { return guarded(v); }
