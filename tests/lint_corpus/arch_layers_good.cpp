// lint-tree
// lint-expect: none
// lint-file: src/geom/pt.h
#pragma once
struct Pt {
  int x = 0;
  int y = 0;
};
// lint-file: src/support/check2.h
#pragma once
inline bool ok(int v) { return v >= 0; }
// lint-file: src/db/design2.h
#pragma once
#include "geom/pt.h"
#include "support/check2.h"
struct Design2 {
  Pt origin;
};
// lint-file: src/db/design2.cpp
#include "db/design2.h"
bool designOk(const Design2& d) { return ok(d.origin.x); }
