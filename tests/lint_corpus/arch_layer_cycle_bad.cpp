// lint-tree
// lint-expect: LAYER-CYCLE@5
// lint-file: src/db/a.h
#pragma once
#include "db/b.h"
struct A;
// lint-file: src/db/b.h
#pragma once
#include "db/a.h"
struct B;
// lint-file: src/db/use.cpp
#include "db/a.h"
static A* gA = nullptr;
