// lint-as: src/route/hot_blocking_bad.cpp
// lint-expect: HOT-BLOCKING@11
#include <chrono>
#include <thread>

/// A blocking-manifest call (sleep_for) reachable from a CPR_HOT root.
/// Backoff, pool drains, and socket I/O belong in the drivers around the
/// hot kernels, never inside them.
void backoff(int attempt) {
  const auto wait = std::chrono::milliseconds(1 << attempt);
  std::this_thread::sleep_for(wait);
}

int hotRoot(int attempt) CPR_HOT {
  backoff(attempt);
  return attempt;
}
