// lint-as: bench/timing.cpp
// lint-expect: none
#include <chrono>

#include "support/deadline.h"

// Measurement code outside src/core and src/ilp may read the steady clock.
double elapsedSeconds(std::chrono::steady_clock::time_point t0) {
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool budgetFired(const cpr::support::Deadline& d) { return d.expired(); }
