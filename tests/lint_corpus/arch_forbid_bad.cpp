// lint-tree
// lint-expect: LAYER-FORBIDDEN@11 LAYER-FORBIDDEN@14
// lint-file: src/ilp/simplex.h
#pragma once
struct Spx {};
// lint-file: src/ilp/wrap.h
#pragma once
#include "ilp/simplex.h"
struct Wrap { Spx s; };
// lint-file: src/core/direct.cpp
#include "ilp/simplex.h"
static Spx* gDirect = nullptr;
// lint-file: src/core/indirect.cpp
#include "ilp/wrap.h"
static Wrap* gIndirect = nullptr;
