/// \file core_chaos_test.cpp
/// Fault-injection ("chaos") tests for the optimizer's panel boundary.
///
/// A mock solver deterministically faults ~half of all panels — throwing on
/// some, returning no incumbent on others — keyed on the panel index and a
/// fixed seed, never on time or thread identity. The optimizer must never
/// crash, must walk the degradation ladder to a legal plan (zero diff-net
/// overlaps), must count exactly one of `pao.panel.failed` /
/// `pao.panel.degraded` per injected fault, and must produce bit-identical
/// plans and counters for any worker-thread count.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/conflict.h"
#include "core/optimizer.h"
#include "gen/generator.h"
#include "obs/names.h"
#include "support/status.h"

namespace cpr::core {
namespace {

constexpr std::uint64_t kFaultSeed = 0x9e3779b97f4a7c15ULL;

/// splitmix64-style finalizer: the fault pattern is a pure function of the
/// panel index, so it is identical for any thread count and schedule.
std::uint64_t mix(std::uint64_t x) {
  x += kFaultSeed;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// 0 = healthy, 1 = throw, 2 = no incumbent (simulated budget exhaustion).
int faultOf(int panel) {
  const std::uint64_t h = mix(static_cast<std::uint64_t>(panel));
  if ((h & 1) == 0) return 0;  // ~50% of panels stay healthy
  return ((h >> 1) & 1) ? 1 : 2;
}

/// Faults by panel index (read from the collector's src tag); healthy
/// panels delegate to the real LR solver.
class ChaosSolver : public Solver {
 public:
  using Solver::solve;
  [[nodiscard]] std::string_view name() const override { return "chaos"; }
  [[nodiscard]] Assignment solve(const PanelKernel& k, PanelScratch* scratch,
                                 obs::Collector* obs,
                                 support::Deadline deadline) const override {
    switch (faultOf(obs ? obs->src() : 0)) {
      case 1: throw std::runtime_error("injected panel fault");
      case 2: {
        Assignment empty;
        empty.intervalOfPin.assign(k.numPins(), geom::kInvalidIndex);
        return empty;
      }
      default: return inner_.solve(k, scratch, obs, deadline);
    }
  }

 private:
  LrSolver inner_;
};

/// Same fault pattern, but claims to BE the LR solver — the optimizer then
/// skips the LR rung and must recover through greedy / minimal-interval.
class ChaosLrSolver final : public ChaosSolver {
 public:
  [[nodiscard]] std::string_view name() const override { return "lr"; }
};

db::Design chaosDesign() {
  gen::GenOptions o;
  o.seed = 21;
  o.width = 110;
  o.numRows = 12;  // enough panels for a meaningful fault mix
  o.pinDensity = 0.2;
  o.maxNetSpan = 30;
  return gen::generate(o);
}

/// Plan legality with unassigned pins allowed: assigned routes must cover
/// their pin, and no two routes of different nets may overlap on a track.
void expectLegal(const db::Design& d, const PinAccessPlan& plan) {
  ASSERT_EQ(plan.routes.size(), d.pins().size());
  for (std::size_t p = 0; p < plan.routes.size(); ++p) {
    const PinRoute& r = plan.routes[p];
    if (!r.valid()) continue;
    EXPECT_TRUE(d.pins()[p].shape.y.contains(r.track));
    EXPECT_TRUE(r.span.contains(d.pins()[p].shape.x));
  }
  for (std::size_t a = 0; a < plan.routes.size(); ++a) {
    for (std::size_t b = a + 1; b < plan.routes.size(); ++b) {
      const PinRoute& ra = plan.routes[a];
      const PinRoute& rb = plan.routes[b];
      if (!ra.valid() || !rb.valid() || ra.track != rb.track) continue;
      if (d.pins()[a].net == d.pins()[b].net) continue;
      EXPECT_FALSE(ra.span.overlaps(rb.span))
          << d.pins()[a].name << " vs " << d.pins()[b].name;
    }
  }
}

long expectedFaults(const PinAccessPlan& plan, int kind) {
  const long panels = plan.stats.counter(obs::names::kPaoPanels);
  long n = 0;
  for (long p = 0; p < panels; ++p) n += faultOf(static_cast<int>(p)) == kind;
  return n;
}

TEST(Chaos, FaultedPanelsDegradeToALegalPlan) {
  const db::Design d = chaosDesign();
  OptimizerOptions opts;
  opts.solver = std::make_shared<ChaosSolver>();
  const PinAccessPlan plan = optimizePinAccess(d, opts);
  expectLegal(d, plan);

  const long throws = expectedFaults(plan, 1);
  const long stalls = expectedFaults(plan, 2);
  ASSERT_GT(throws, 0);
  ASSERT_GT(stalls, 0);
  // Exactly one of failed/degraded per injected fault, nothing else.
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoPanelFailed), throws);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoPanelDegraded), stalls);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoPanelFailed) +
                plan.stats.counter(obs::names::kPaoPanelDegraded),
            throws + stalls);
  // Faulted panels recovered through the LR rung; healthy ones stayed on
  // the primary.
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoRungLr), throws + stalls);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoRungPrimary),
            plan.stats.counter(obs::names::kPaoPanels) - throws - stalls);
  // All pins still served: the LR rung is a full solver.
  EXPECT_EQ(plan.unassignedPins(), 0);
}

TEST(Chaos, LadderReachesGreedyAndMinimalRungs) {
  const db::Design d = chaosDesign();
  OptimizerOptions opts;
  opts.solver = std::make_shared<ChaosLrSolver>();  // LR rung unavailable
  const PinAccessPlan plan = optimizePinAccess(d, opts);
  expectLegal(d, plan);
  const long faults = expectedFaults(plan, 1) + expectedFaults(plan, 2);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoPanelFailed) +
                plan.stats.counter(obs::names::kPaoPanelDegraded),
            faults);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoRungLr), 0);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoRungGreedy) +
                plan.stats.counter(obs::names::kPaoRungMinimal),
            faults);
}

TEST(Chaos, PlansAndCountersAreThreadCountInvariant) {
  const db::Design d = chaosDesign();
  std::vector<PinAccessPlan> plans;
  for (int threads : {1, 2, 8}) {
    OptimizerOptions opts;
    opts.solver = std::make_shared<ChaosSolver>();
    opts.threads = threads;
    plans.push_back(optimizePinAccess(d, opts));
  }
  const PinAccessPlan& ref = plans.front();
  for (std::size_t i = 1; i < plans.size(); ++i) {
    const PinAccessPlan& p = plans[i];
    EXPECT_EQ(p.objective, ref.objective);  // bit-identical, not just close
    ASSERT_EQ(p.routes.size(), ref.routes.size());
    for (std::size_t j = 0; j < ref.routes.size(); ++j) {
      EXPECT_EQ(p.routes[j].track, ref.routes[j].track) << "pin " << j;
      EXPECT_EQ(p.routes[j].span, ref.routes[j].span) << "pin " << j;
    }
    for (const std::string_view name :
         {obs::names::kPaoPanelFailed, obs::names::kPaoPanelDegraded,
          obs::names::kPaoRungPrimary, obs::names::kPaoRungLr,
          obs::names::kPaoRungGreedy, obs::names::kPaoRungMinimal,
          obs::names::kPaoFallbacks, obs::names::kPaoUnassigned,
          obs::names::kLrIterations}) {
      EXPECT_EQ(p.stats.counter(name), ref.stats.counter(name)) << name;
    }
  }
}

TEST(Chaos, ExpiredRunDeadlineDegradesEveryPanelButStaysLegal) {
  const db::Design d = chaosDesign();
  OptimizerOptions opts;
  opts.deadline = support::Deadline::after(0.0);  // already expired
  const PinAccessPlan plan = optimizePinAccess(d, opts);
  expectLegal(d, plan);
  const long panels = plan.stats.counter(obs::names::kPaoPanels);
  ASSERT_GT(panels, 0);
  // Every panel skipped its solver: degraded (not failed), fast rungs only.
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoPanelDegraded), panels);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoPanelFailed), 0);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoRungPrimary), 0);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoRungLr), 0);
  EXPECT_EQ(plan.stats.counter(obs::names::kPaoRungGreedy) +
                plan.stats.counter(obs::names::kPaoRungMinimal),
            panels);
}

TEST(Chaos, TrySolveClassifiesFaults) {
  const db::Design d = chaosDesign();
  const std::vector<db::Panel> panels = db::extractPanels(d);
  ASSERT_FALSE(panels.empty());
  Problem p = buildProblem(d, panels[0], {});
  detectConflicts(p);
  const PanelKernel k = PanelKernel::compile(std::move(p));
  ASSERT_GT(k.numPins(), 0u);

  struct Throwing final : Solver {
    using Solver::solve;
    [[nodiscard]] std::string_view name() const override { return "boom"; }
    [[nodiscard]] Assignment solve(const PanelKernel&, PanelScratch*,
                                   obs::Collector*,
                                   support::Deadline) const override {
      throw std::runtime_error("kaboom");
    }
  };
  const auto failed = Throwing{}.trySolve(k);
  EXPECT_EQ(failed.code(), support::StatusCode::Failed);
  EXPECT_NE(failed.status().message().find("kaboom"), std::string::npos);
  EXPECT_TRUE(failed.status().isFailure());

  struct Empty final : Solver {
    using Solver::solve;
    [[nodiscard]] std::string_view name() const override { return "empty"; }
    [[nodiscard]] Assignment solve(const PanelKernel& kk, PanelScratch*,
                                   obs::Collector*,
                                   support::Deadline) const override {
      Assignment a;
      a.intervalOfPin.assign(kk.numPins(), geom::kInvalidIndex);
      return a;
    }
  };
  EXPECT_EQ(Empty{}.trySolve(k).code(), support::StatusCode::Infeasible);
  EXPECT_EQ(Empty{}.trySolve(k, nullptr, nullptr,
                             support::Deadline::after(0.0))
                .code(),
            support::StatusCode::TimedOut);

  const auto ok = LrSolver{}.trySolve(k);
  EXPECT_EQ(ok.code(), support::StatusCode::Ok);
  EXPECT_TRUE(ok.isOk());
  EXPECT_EQ(ok.value().violations, 0);
}

}  // namespace
}  // namespace cpr::core
