#include <gtest/gtest.h>

#include "route/grid.h"

namespace cpr::route {
namespace {

using db::Design;
using db::Layer;
using geom::Interval;
using geom::Rect;

Design makeDesign() {
  Design d("g", 20, 2, 10);
  const db::Index a = d.addNet("A");
  const db::Index b = d.addNet("B");
  d.addPin("a1", a, Rect{Interval::point(3), Interval{2, 4}});
  d.addPin("a2", a, Rect{Interval::point(12), Interval{2, 4}});
  d.addPin("b1", b, Rect{Interval::point(7), Interval{13, 15}});
  d.addPin("b2", b, Rect{Interval::point(16), Interval{13, 15}});
  d.addBlockage(Layer::M2, Rect{Interval{0, 5}, Interval{8, 8}});
  d.addBlockage(Layer::M3, Rect{Interval{9, 9}, Interval{0, 19}});
  return d;
}

TEST(RoutingGrid, NodePackingRoundTrips) {
  const Design d = makeDesign();
  RoutingGrid g(d, nullptr);
  EXPECT_EQ(g.width(), 20);
  EXPECT_EQ(g.height(), 20);
  for (const Node n : {Node{RLayer::M2, 0, 0}, Node{RLayer::M2, 19, 19},
                       Node{RLayer::M3, 7, 13}, Node{RLayer::M3, 19, 0}}) {
    EXPECT_EQ(g.node(g.id(n)), n);
  }
  EXPECT_EQ(g.numNodes(), 2 * 20 * 20);
}

TEST(RoutingGrid, BlockagesPerLayer) {
  const Design d = makeDesign();
  RoutingGrid g(d, nullptr);
  EXPECT_TRUE(g.blocked(g.id(Node{RLayer::M2, 3, 8})));
  EXPECT_FALSE(g.blocked(g.id(Node{RLayer::M3, 3, 8})));
  EXPECT_TRUE(g.blocked(g.id(Node{RLayer::M3, 9, 11})));
  EXPECT_FALSE(g.blocked(g.id(Node{RLayer::M2, 9, 11})));
}

TEST(RoutingGrid, PinProjectionRecordsOwningNet) {
  const Design d = makeDesign();
  RoutingGrid g(d, nullptr);
  EXPECT_EQ(g.pinNetAt(g.id(Node{RLayer::M2, 3, 2})), 0);
  EXPECT_EQ(g.pinNetAt(g.id(Node{RLayer::M2, 3, 4})), 0);
  EXPECT_EQ(g.pinNetAt(g.id(Node{RLayer::M2, 7, 14})), 1);
  EXPECT_EQ(g.pinNetAt(g.id(Node{RLayer::M2, 5, 2})), geom::kInvalidIndex);
}

TEST(RoutingGrid, IntervalMapFollowsPlan) {
  const Design d = makeDesign();
  core::PinAccessPlan plan;
  plan.routes.assign(d.pins().size(), core::PinRoute{});
  plan.routes[0] = core::PinRoute{3, Interval{1, 8}};  // pin a1 on track 3
  RoutingGrid g(d, &plan);
  EXPECT_EQ(g.intervalNetAt(g.id(Node{RLayer::M2, 1, 3})), 0);
  EXPECT_EQ(g.intervalNetAt(g.id(Node{RLayer::M2, 8, 3})), 0);
  EXPECT_EQ(g.intervalNetAt(g.id(Node{RLayer::M2, 9, 3})), geom::kInvalidIndex);
  // Without a plan the map reports no interval anywhere.
  RoutingGrid g2(d, nullptr);
  EXPECT_EQ(g2.intervalNetAt(g2.id(Node{RLayer::M2, 1, 3})), geom::kInvalidIndex);
}

TEST(RoutingGrid, OccupancyAndCongestion) {
  const Design d = makeDesign();
  RoutingGrid g(d, nullptr);
  const int id = g.id(Node{RLayer::M2, 10, 10});
  EXPECT_EQ(g.occupancy(id), 0);
  g.addOcc(id);
  g.addOcc(id);
  EXPECT_EQ(g.occupancy(id), 2);
  EXPECT_EQ(g.congestedNodeCount(), 1);
  g.removeOcc(id);
  EXPECT_EQ(g.congestedNodeCount(), 0);
}

TEST(RoutingGrid, HistoryAccumulates) {
  const Design d = makeDesign();
  RoutingGrid g(d, nullptr);
  const int id = g.id(Node{RLayer::M3, 4, 4});
  g.addHistory(id, 1.5F);
  g.addHistory(id, 0.5F);
  EXPECT_FLOAT_EQ(g.history(id), 2.0F);
}

TEST(RoutingGrid, ViaForbiddenIsSameTrackOnly) {
  const Design d = makeDesign();
  RoutingGrid g(d, nullptr);
  g.addVia(10, 10, /*net=*/0);
  EXPECT_TRUE(g.viaForbidden(10, 10, 1));   // same site, other net
  EXPECT_TRUE(g.viaForbidden(11, 10, 1));   // adjacent column, same track
  EXPECT_TRUE(g.viaForbidden(9, 10, 1));
  EXPECT_FALSE(g.viaForbidden(10, 11, 1));  // adjacent track: fine
  EXPECT_FALSE(g.viaForbidden(12, 10, 1));  // two columns away: fine
  EXPECT_FALSE(g.viaForbidden(11, 10, 0));  // same net: fine
  g.removeVia(10, 10, 0);
  EXPECT_FALSE(g.viaForbidden(10, 10, 1));
}

}  // namespace
}  // namespace cpr::route
